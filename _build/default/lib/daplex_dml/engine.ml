type t = {
  kernel : Mapping.Kernel.t;
  transform : Transformer.Transform.t;
  descriptor : Abdm.Descriptor.t;
  mutable log : Abdl.Ast.request list;  (* newest first *)
}

type outcome =
  | Printed of (string * Abdm.Value.t) list list
  | Created of int
  | Destroyed of int

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let create kernel transform =
  {
    kernel;
    transform;
    descriptor = Mapping.Ab_schema.descriptor (Mapping.Ab_schema.Fun transform);
    log = [];
  }

let schema t = t.transform.Transformer.Transform.source

let issue t request =
  t.log <- request :: t.log;
  Mapping.Kernel.run t.kernel request

let retrieve t query =
  match issue t (Abdl.Ast.retrieve query [ Abdl.Ast.T_all ]) with
  | Abdl.Exec.Rows rows ->
    List.filter_map
      (fun (row : Abdl.Exec.row) ->
        match row.dbkey with
        | Some key ->
          Some
            ( key,
              Abdm.Record.make
                (List.map (fun (attr, v) -> Abdm.Keyword.make attr v) row.values) )
        | None -> None)
      rows
  | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ -> []

let int_pred attr key =
  Abdm.Predicate.make attr Abdm.Predicate.Eq (Abdm.Value.Int key)

(* All stored copies of one entity instance. *)
let records_of t type_name key =
  retrieve t
    (Abdm.Query.conj [ Abdm.Predicate.file_eq type_name; int_pred type_name key ])

(* The type (itself or an ancestor) declaring [fn]. *)
let rec declaring_type t type_name fn =
  if Daplex.Schema.find_function (schema t) type_name fn <> None then
    Some type_name
  else
    List.find_map
      (fun super -> declaring_type t super fn)
      (Daplex.Schema.supertypes_of (schema t) type_name)

let isa_set_between t ~super ~sub =
  List.find_opt
    (fun (s : Network.Types.set_type) ->
      String.equal s.set_owner super
      && String.equal s.set_member sub
      && Transformer.Transform.origin_of_set t.transform s.set_name
         = Some Transformer.Transform.O_isa)
    t.transform.Transformer.Transform.net.Network.Schema.sets

(* Instance keys of [target_type] reached by walking the ISA references up
   from instance (type_name, key) — value inheritance. *)
let rec ascend t (type_name, key) target_type =
  if String.equal type_name target_type then [ key ]
  else
    let copies = records_of t type_name key in
    List.concat_map
      (fun super ->
        match isa_set_between t ~super ~sub:type_name with
        | None -> []
        | Some s ->
          let super_keys =
            List.filter_map
              (fun (_, r) ->
                match Abdm.Record.value_of r s.set_name with
                | Some (Abdm.Value.Int k) -> Some k
                | Some _ | None -> None)
              copies
            |> List.sort_uniq Int.compare
          in
          List.concat_map
            (fun k -> ascend t (super, k) target_type)
            super_keys)
      (Daplex.Schema.supertypes_of (schema t) type_name)

(* Apply one function to an instance; scalar results are values, entity
   results are (range_type, key) references. *)
type applied =
  | Values of Abdm.Value.t list
  | Refs of string * int list

let apply_function t (type_name, key) fn =
  match declaring_type t type_name fn with
  | None -> err "%s is not a function of %s (or its supertypes)" fn type_name
  | Some declared ->
    let instance_keys = ascend t (type_name, key) declared in
    let decl =
      match Daplex.Schema.find_function (schema t) declared fn with
      | Some d -> d
      | None -> assert false
    in
    let copies = List.concat_map (fun k -> records_of t declared k) instance_keys in
    match Daplex.Schema.classify (schema t) decl with
    | Daplex.Schema.C_scalar | Daplex.Schema.C_scalar_multi ->
      let values =
        List.filter_map
          (fun (_, r) ->
            match Abdm.Record.value_of r fn with
            | Some Abdm.Value.Null | None -> None
            | Some v -> Some v)
          copies
      in
      let dedup =
        List.fold_left
          (fun acc v ->
            if List.exists (Abdm.Value.equal v) acc then acc else v :: acc)
          [] values
        |> List.rev
      in
      Ok (Values dedup)
    | Daplex.Schema.C_single_valued range | Daplex.Schema.C_multi_valued range ->
      match
        Transformer.Transform.set_of_function t.transform ~type_name:declared
          ~fn
      with
      | None -> err "no set transformed from function %s" fn
      | Some s ->
        match Transformer.Transform.origin_of_set t.transform s.set_name with
        | Some (Transformer.Transform.O_function_member _) ->
          (* instance's own records hold the reference *)
          let keys =
            List.filter_map
              (fun (_, r) ->
                match Abdm.Record.value_of r s.set_name with
                | Some (Abdm.Value.Int k) -> Some k
                | Some _ | None -> None)
              copies
            |> List.sort_uniq Int.compare
          in
          Ok (Refs (range, keys))
        | Some (Transformer.Transform.O_function_owner _) ->
          let keys =
            List.filter_map
              (fun (_, r) ->
                match Abdm.Record.value_of r s.set_name with
                | Some (Abdm.Value.Int k) -> Some k
                | Some _ | None -> None)
              copies
            |> List.sort_uniq Int.compare
          in
          Ok (Refs (range, keys))
        | Some (Transformer.Transform.O_link _) ->
          (* LINK records: this side's set attribute holds our key; the
             other side's holds the target. *)
          let link =
            List.find_opt
              (fun (l : Transformer.Transform.link) ->
                String.equal l.link_record s.set_member)
              t.transform.Transformer.Transform.links
          in
          begin
            match link with
            | None -> err "set %s has no LINK record" s.set_name
            | Some l ->
              (* the link's two set names disambiguate even a
                 self-referential many-to-many *)
              let other_set =
                if String.equal l.link_set_a s.set_name then l.link_set_b
                else l.link_set_a
              in
              let targets = ref [] in
              List.iter
                (fun k ->
                  let links =
                    retrieve t
                      (Abdm.Query.conj
                         [
                           Abdm.Predicate.file_eq l.link_record;
                           int_pred s.set_name k;
                         ])
                  in
                  List.iter
                    (fun (_, r) ->
                      match Abdm.Record.value_of r other_set with
                      | Some (Abdm.Value.Int target) ->
                        targets := target :: !targets
                      | Some _ | None -> ())
                    links)
                instance_keys;
              Ok (Refs (range, List.sort_uniq Int.compare !targets))
          end
        | Some Transformer.Transform.O_system
        | Some Transformer.Transform.O_isa
        | None -> err "set %s is not a function set" s.set_name

(* Evaluate a whole path from an instance; returns the final value list. *)
let eval_path t (type_name, key) fns =
  let rec go frontier = function
    | [] ->
      (* an entity-valued path ends in references; expose the keys *)
      Ok
        (List.concat_map
           (fun (_, keys) -> List.map (fun k -> Abdm.Value.Int k) keys)
           frontier)
    | fn :: rest ->
      let* applied =
        List.fold_left
          (fun acc (tname, keys) ->
            let* acc = acc in
            List.fold_left
              (fun acc key ->
                let* acc = acc in
                let* a = apply_function t (tname, key) fn in
                Ok (a :: acc))
              (Ok acc) keys)
          (Ok []) frontier
      in
      if rest = [] then
        (* terminal application: scalars end the path *)
        let scalars =
          List.concat_map
            (function
              | Values vs -> vs
              | Refs (_, keys) -> List.map (fun k -> Abdm.Value.Int k) keys)
            applied
        in
        Ok scalars
      else
        let next_frontier =
          List.filter_map
            (function
              | Refs (range, keys) -> Some (range, keys)
              | Values _ -> None)
            applied
        in
        if next_frontier = [] then
          err "%s is scalar-valued and cannot be composed" fn
        else go next_frontier rest
  in
  go [ type_name, [ key ] ] fns

(* Distinct instances (primary keys) of an entity type's file. *)
let instances t entity =
  let records = retrieve t (Abdm.Query.conj [ Abdm.Predicate.file_eq entity ]) in
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun (dbkey, r) ->
      let k = Mapping.Ab_schema.entity_key entity r ~dbkey in
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.add seen k ();
        Some k
      end)
    records

(* Daplex set expressions: COUNT/SUM/AVG/MIN/MAX applied outermost over a
   path aggregate the inner values. A schema function of the same name
   always wins. *)
let aggregate_of_name name =
  match String.uppercase_ascii name with
  | "COUNT" -> Some Abdl.Ast.Count
  | "SUM" -> Some Abdl.Ast.Sum
  | "AVG" | "AVERAGE" -> Some Abdl.Ast.Avg
  | "MIN" -> Some Abdl.Ast.Min
  | "MAX" -> Some Abdl.Ast.Max
  | _ -> None

let eval_expr t inst fns =
  match List.rev fns with
  | outer :: inner_rev
    when declaring_type t (fst inst) outer = None
         && aggregate_of_name outer <> None ->
    let agg =
      match aggregate_of_name outer with
      | Some a -> a
      | None -> assert false
    in
    let* values = eval_path t inst (List.rev inner_rev) in
    let state =
      List.fold_left Abdl.Aggregate.add Abdl.Aggregate.empty values
    in
    Ok [ Abdl.Aggregate.finalize agg state ]
  | _ -> eval_path t inst fns

let check_var expected (p : Ast.path) =
  if String.equal p.var expected then Ok ()
  else err "unbound variable %s (loop variable is %s)" p.var expected

let matches t entity key (comps : Ast.comparison list) =
  List.fold_left
    (fun acc (c : Ast.comparison) ->
      let* acc = acc in
      if not acc then Ok false
      else
        let* values = eval_expr t (entity, key) c.comp_path.Ast.fns in
        Ok
          (List.exists
             (fun v -> Abdm.Predicate.eval c.comp_op v c.comp_value)
             values))
    (Ok true) comps

(* THE v IN entity SUCH THAT ... — must select exactly one entity *)
let resolve_selector t (sel : Ast.selector) =
  let* () =
    if Daplex.Schema.is_entity_name (schema t) sel.sel_entity then Ok ()
    else err "unknown entity type %s" sel.sel_entity
  in
  let* () =
    List.fold_left
      (fun acc (c : Ast.comparison) ->
        let* () = acc in
        check_var sel.sel_var c.comp_path)
      (Ok ()) sel.sel_such_that
  in
  let* hits =
    List.fold_left
      (fun acc key ->
        let* acc = acc in
        let* keep = matches t sel.sel_entity key sel.sel_such_that in
        Ok (if keep then key :: acc else acc))
      (Ok [])
      (instances t sel.sel_entity)
  in
  match hits with
  | [ key ] -> Ok key
  | [] -> err "THE %s IN %s: no such entity" sel.sel_var sel.sel_entity
  | _ :: _ :: _ ->
    err "THE %s IN %s: selects %d entities, expected one" sel.sel_var
      sel.sel_entity (List.length hits)

(* LET fn(x) = v — assign a scalar function at its declaring instance *)
let exec_let t (entity, key) fn value =
  match declaring_type t entity fn with
  | None -> err "%s is not a function of %s" fn entity
  | Some declared ->
    let decl =
      match Daplex.Schema.find_function (schema t) declared fn with
      | Some d -> d
      | None -> assert false
    in
    match Daplex.Schema.classify (schema t) decl with
    | Daplex.Schema.C_scalar | Daplex.Schema.C_scalar_multi ->
      let keys = ascend t (entity, key) declared in
      List.iter
        (fun ik ->
          ignore
            (issue t
               (Abdl.Ast.Update
                  ( Abdm.Query.conj
                      [ Abdm.Predicate.file_eq declared; int_pred declared ik ],
                    [ Abdm.Modifier.Set_const (fn, value) ] ))))
        keys;
      Ok ()
    | Daplex.Schema.C_single_valued _ | Daplex.Schema.C_multi_valued _ ->
      err "LET %s: entity-valued functions use INCLUDE/EXCLUDE" fn

(* INCLUDE / EXCLUDE — add or remove a member of an entity-valued
   function, per the representation the transformation chose. *)
let exec_include_exclude t ~add (entity, key) fn (target : Ast.selector) =
  match declaring_type t entity fn with
  | None -> err "%s is not a function of %s" fn entity
  | Some declared ->
    let decl =
      match Daplex.Schema.find_function (schema t) declared fn with
      | Some d -> d
      | None -> assert false
    in
    let* range =
      match Daplex.Schema.classify (schema t) decl with
      | Daplex.Schema.C_single_valued r | Daplex.Schema.C_multi_valued r -> Ok r
      | Daplex.Schema.C_scalar | Daplex.Schema.C_scalar_multi ->
        err "%s is scalar-valued; use LET" fn
    in
    let* () =
      if String.equal range target.sel_entity then Ok ()
      else
        err "%s ranges over %s, not %s" fn range target.sel_entity
    in
    let* target_key = resolve_selector t target in
    let* s =
      match
        Transformer.Transform.set_of_function t.transform ~type_name:declared ~fn
      with
      | Some s -> Ok s
      | None -> err "no set transformed from function %s" fn
    in
    let* instance_keys =
      match ascend t (entity, key) declared with
      | [] -> err "no %s instance reachable from %s %d" declared entity key
      | keys -> Ok keys
    in
    let per_instance ik =
      match Transformer.Transform.origin_of_set t.transform s.set_name with
      | Some (Transformer.Transform.O_function_member _) ->
        (* the instance's own records hold the (single-valued) reference *)
        let query =
          Abdm.Query.conj
            [ Abdm.Predicate.file_eq declared; int_pred declared ik ]
        in
        let v = if add then Abdm.Value.Int target_key else Abdm.Value.Null in
        ignore
          (issue t (Abdl.Ast.Update (query, [ Abdm.Modifier.Set_const (s.set_name, v) ])));
        Ok ()
      | Some (Transformer.Transform.O_function_owner _) ->
        let copies = records_of t declared ik in
        if add then begin
          let null_copy (_, c) =
            match Abdm.Record.value_of c s.set_name with
            | Some Abdm.Value.Null | None -> true
            | Some _ -> false
          in
          if List.exists null_copy copies then begin
            let query =
              Abdm.Query.conj
                [
                  Abdm.Predicate.file_eq declared;
                  int_pred declared ik;
                  Abdm.Predicate.make s.set_name Abdm.Predicate.Eq Abdm.Value.Null;
                ]
            in
            ignore
              (issue t
                 (Abdl.Ast.Update
                    ( query,
                      [ Abdm.Modifier.Set_const
                          (s.set_name, Abdm.Value.Int target_key) ] )));
            Ok ()
          end
          else begin
            match copies with
            | (_, base) :: _ ->
              let dup =
                Abdm.Record.set base s.set_name (Abdm.Value.Int target_key)
              in
              ignore (issue t (Abdl.Ast.Insert dup));
              Ok ()
            | [] -> err "no records for %s %d" declared ik
          end
        end
        else begin
          let member_count =
            List.length
              (List.filter
                 (fun (_, c) ->
                   match Abdm.Record.value_of c s.set_name with
                   | Some (Abdm.Value.Int _) -> true
                   | Some _ | None -> false)
                 copies)
          in
          let query =
            Abdm.Query.conj
              [
                Abdm.Predicate.file_eq declared;
                int_pred declared ik;
                int_pred s.set_name target_key;
              ]
          in
          if member_count > 1 then ignore (issue t (Abdl.Ast.Delete query))
          else
            ignore
              (issue t
                 (Abdl.Ast.Update
                    (query, [ Abdm.Modifier.Set_const (s.set_name, Abdm.Value.Null) ])));
          Ok ()
        end
      | Some (Transformer.Transform.O_link _) ->
        let link =
          List.find_opt
            (fun (l : Transformer.Transform.link) ->
              String.equal l.link_record s.set_member)
            t.transform.Transformer.Transform.links
        in
        begin
          match link with
          | None -> err "set %s has no LINK record" s.set_name
          | Some l ->
            let other_set =
              if String.equal l.link_set_a s.set_name then l.link_set_b
              else l.link_set_a
            in
            let pair_query =
              Abdm.Query.conj
                [
                  Abdm.Predicate.file_eq l.link_record;
                  int_pred s.set_name ik;
                  int_pred other_set target_key;
                ]
            in
            if add then begin
              if retrieve t pair_query = [] then
                ignore
                  (issue t
                     (Abdl.Ast.Insert
                        (Abdm.Record.make
                           [
                             Abdm.Keyword.file l.link_record;
                             Abdm.Keyword.make s.set_name (Abdm.Value.Int ik);
                             Abdm.Keyword.make other_set
                               (Abdm.Value.Int target_key);
                           ])));
              Ok ()
            end
            else begin
              ignore (issue t (Abdl.Ast.Delete pair_query));
              Ok ()
            end
        end
      | Some Transformer.Transform.O_system
      | Some Transformer.Transform.O_isa
      | None -> err "set %s is not a function set" s.set_name
    in
    List.fold_left
      (fun acc ik ->
        let* () = acc in
        per_instance ik)
      (Ok ()) instance_keys

let exec_for_each t var entity such_that body =
  let* () =
    if Daplex.Schema.is_entity_name (schema t) entity then Ok ()
    else err "unknown entity type %s" entity
  in
  let* () =
    List.fold_left
      (fun acc (c : Ast.comparison) ->
        let* () = acc in
        check_var var c.comp_path)
      (Ok ()) such_that
  in
  let* () =
    List.fold_left
      (fun acc action ->
        let* () = acc in
        match action with
        | Ast.A_print paths ->
          List.fold_left
            (fun acc p ->
              let* () = acc in
              check_var var p)
            (Ok ()) paths
        | Ast.A_let _ | Ast.A_include _ | Ast.A_exclude _ -> Ok ())
      (Ok ()) body
  in
  let keys = instances t entity in
  let* rows =
    List.fold_left
      (fun acc key ->
        let* acc = acc in
        let* keep = matches t entity key such_that in
        if not keep then Ok acc
        else
          (* run the body actions in order; PRINT cells accumulate into
             this instance's row *)
          let* row =
            List.fold_left
              (fun acc action ->
                let* cells = acc in
                match action with
                | Ast.A_print paths ->
                  List.fold_left
                    (fun acc (p : Ast.path) ->
                      let* cells = acc in
                      let* values = eval_expr t (entity, key) p.Ast.fns in
                      let cell =
                        match values with
                        | [] -> Abdm.Value.Null
                        | [ v ] -> v
                        | many ->
                          Abdm.Value.Str
                            (String.concat ", "
                               (List.map Abdm.Value.to_display many))
                      in
                      Ok ((Ast.path_to_string p, cell) :: cells))
                    (Ok cells) paths
                | Ast.A_let { fn; value } ->
                  let* () = exec_let t (entity, key) fn value in
                  Ok cells
                | Ast.A_include { fn; target } ->
                  let* () = exec_include_exclude t ~add:true (entity, key) fn target in
                  Ok cells
                | Ast.A_exclude { fn; target } ->
                  let* () =
                    exec_include_exclude t ~add:false (entity, key) fn target
                  in
                  Ok cells)
              (Ok []) body
          in
          Ok (if row = [] then acc else List.rev row :: acc))
      (Ok []) keys
  in
  Ok (Printed (List.rev rows))

let exec_create t entity under assignments =
  let* tref =
    match Daplex.Schema.find_type (schema t) entity with
    | Some tref -> Ok tref
    | None -> err "unknown entity type %s" entity
  in
  let supertypes =
    match tref with
    | Daplex.Schema.Entity _ -> []
    | Daplex.Schema.Subtype s -> s.sub_supertypes
  in
  let* isa_values =
    List.fold_left
      (fun acc super ->
        let* acc = acc in
        match List.assoc_opt super under with
        | Some key ->
          begin
            match isa_set_between t ~super ~sub:entity with
            | Some s -> Ok ((s.Network.Types.set_name, key) :: acc)
            | None -> err "no ISA set %s -> %s" super entity
          end
        | None ->
          err "CREATE %s: missing UNDER %s <key> (subtype creation)" entity
            super)
      (Ok []) supertypes
  in
  (* validate assignments against the declared scalar functions *)
  let* () =
    List.fold_left
      (fun acc (fn, _) ->
        let* () = acc in
        match Daplex.Schema.find_function (schema t) entity fn with
        | Some decl ->
          begin
            match Daplex.Schema.classify (schema t) decl with
            | Daplex.Schema.C_scalar | Daplex.Schema.C_scalar_multi -> Ok ()
            | Daplex.Schema.C_single_valued _ | Daplex.Schema.C_multi_valued _ ->
              err "CREATE %s: %s is entity-valued; use the DML CONNECT path"
                entity fn
          end
        | None -> err "CREATE %s: %s is not a function of %s" entity fn entity)
      (Ok ()) assignments
  in
  let* file =
    match Abdm.Descriptor.find_file t.descriptor entity with
    | Some f -> Ok f
    | None -> err "no kernel file for %s" entity
  in
  let keywords =
    Abdm.Keyword.file entity
    :: List.map
         (fun (a : Abdm.Descriptor.attribute) ->
           let v =
             match List.assoc_opt a.attr_name assignments with
             | Some v -> v
             | None ->
               match List.assoc_opt a.attr_name isa_values with
               | Some key -> Abdm.Value.Int key
               | None -> Abdm.Value.Null
           in
           Abdm.Keyword.make a.attr_name v)
         file.attributes
  in
  match issue t (Abdl.Ast.Insert (Abdm.Record.make keywords)) with
  | Abdl.Exec.Inserted dbkey ->
    let keyed =
      Abdm.Record.set (Abdm.Record.make keywords) entity (Abdm.Value.Int dbkey)
    in
    Mapping.Kernel.replace t.kernel dbkey keyed;
    Ok (Created dbkey)
  | Abdl.Exec.Rows _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
    err "CREATE %s: kernel refused the INSERT" entity

(* DESTROY: abort when the entity is referenced by a database function;
   otherwise delete the entity and its subtype hierarchy downward. *)
let referenced t type_name key =
  let sets = t.transform.Transformer.Transform.net.Network.Schema.sets in
  List.exists
    (fun (s : Network.Types.set_type) ->
      match Transformer.Transform.origin_of_set t.transform s.set_name with
      | Some (Transformer.Transform.O_function_member _)
      | Some (Transformer.Transform.O_link _)
        when String.equal s.set_owner type_name ->
        (* member records reference us through the set attribute *)
        retrieve t
          (Abdm.Query.conj
             [ Abdm.Predicate.file_eq s.set_member; int_pred s.set_name key ])
        <> []
      | Some (Transformer.Transform.O_function_owner _)
        when String.equal s.set_member type_name ->
        (* owner copies reference us *)
        retrieve t
          (Abdm.Query.conj
             [ Abdm.Predicate.file_eq s.set_owner; int_pred s.set_name key ])
        <> []
      | _ -> false)
    sets

let rec destroy_instance t type_name key =
  (* delete subtype records first (the hierarchy of §VI.H) *)
  let children =
    List.concat_map
      (fun (sub : Daplex.Types.subtype) ->
        match isa_set_between t ~super:type_name ~sub:sub.sub_name with
        | None -> []
        | Some s ->
          retrieve t
            (Abdm.Query.conj
               [ Abdm.Predicate.file_eq sub.sub_name; int_pred s.set_name key ])
          |> List.map (fun (dbkey, r) ->
                 sub.sub_name, Mapping.Ab_schema.entity_key sub.sub_name r ~dbkey)
          |> List.sort_uniq compare)
      (Daplex.Schema.subtypes_of (schema t) type_name)
  in
  List.iter (fun (sub, k) -> destroy_instance t sub k) children;
  ignore
    (issue t
       (Abdl.Ast.Delete
          (Abdm.Query.conj
             [ Abdm.Predicate.file_eq type_name; int_pred type_name key ])))

let exec_destroy t var entity such_that =
  let* () =
    if Daplex.Schema.is_entity_name (schema t) entity then Ok ()
    else err "unknown entity type %s" entity
  in
  let* () =
    List.fold_left
      (fun acc (c : Ast.comparison) ->
        let* () = acc in
        check_var var c.comp_path)
      (Ok ()) such_that
  in
  let keys = instances t entity in
  let* victims =
    List.fold_left
      (fun acc key ->
        let* acc = acc in
        let* keep = matches t entity key such_that in
        Ok (if keep then key :: acc else acc))
      (Ok []) keys
  in
  let* () =
    List.fold_left
      (fun acc key ->
        let* () = acc in
        if referenced t entity key then
          err "DESTROY %s: entity %d is referenced by a database function"
            entity key
        else Ok ())
      (Ok ()) victims
  in
  List.iter (fun key -> destroy_instance t entity key) victims;
  Ok (Destroyed (List.length victims))

let execute t = function
  | Ast.For_each { var; entity; such_that; body } ->
    exec_for_each t var entity such_that body
  | Ast.Create { entity; under; assignments } ->
    exec_create t entity under assignments
  | Ast.Destroy { var; entity; such_that } -> exec_destroy t var entity such_that

let run_program t stmts = List.map (fun stmt -> stmt, execute t stmt) stmts

let request_log t = List.rev t.log

let clear_log t = t.log <- []

let outcome_to_string = function
  | Printed rows ->
    if rows = [] then "(no entities)"
    else
      rows
      |> List.map (fun row ->
             row
             |> List.map (fun (label, v) ->
                    Printf.sprintf "%s = %s" label (Abdm.Value.to_display v))
             |> String.concat ", ")
      |> String.concat "\n"
  | Created key -> Printf.sprintf "created (key %d)" key
  | Destroyed n -> Printf.sprintf "destroyed %d entit%s" n (if n = 1 then "y" else "ies")
