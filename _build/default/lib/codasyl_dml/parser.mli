(** Line-oriented parser for CODASYL-DML transactions, e.g. the worked
    example of §VI.B.1:
    {v
    MOVE 'Advanced Database' TO title IN course
    FIND ANY course USING title IN course
    GET course
    v}
    Keywords are case-insensitive; one statement per line ([;] separators
    also accepted); [--] comments. *)

exception Parse_error of string

val stmt : string -> Ast.stmt

(** [program src] parses a whole transaction script. *)
val program : string -> Ast.stmt list
