(** Per-user CODASYL-DML interface state ([dml_info] of §IV.B): the target
    attribute-based database (AB(network) or AB(functional)), the Currency
    Indicator Table, the User Work Area, the per-set result buffers (RB)
    that FIND FIRST/NEXT/PRIOR walk, and a log of every ABDL request the
    translation issues (the one-to-many correspondence of §III.A made
    visible). *)

type rb = {
  mutable rb_entries : (int * Abdm.Record.t) array;
  mutable rb_cursor : int;  (** -1 before the first position *)
}

type t = {
  kernel : Mapping.Kernel.t;
  flavor : Mapping.Ab_schema.flavor;
  descriptor : Abdm.Descriptor.t;
  cit : Network.Currency.t;
  uwa : Network.Uwa.t;
  buffers : (string, rb) Hashtbl.t;  (** per set type *)
  mutable log : Abdl.Ast.request list;  (** newest first *)
}

(** [create kernel flavor] starts a session against a loaded database. *)
val create : Mapping.Kernel.t -> Mapping.Ab_schema.flavor -> t

val net_schema : t -> Network.Schema.t

(** [issue t request] runs one ABDL request through the kernel, logging
    it. *)
val issue : t -> Abdl.Ast.request -> Abdl.Exec.result

(** [retrieve_records t query] issues [RETRIEVE (query) (ALL)] and rebuilds
    the (dbkey, record) pairs from the returned rows. *)
val retrieve_records : t -> Abdm.Query.t -> (int * Abdm.Record.t) list

(** ABDL requests issued so far, oldest first. *)
val request_log : t -> Abdl.Ast.request list

val clear_log : t -> unit

val buffer : t -> string -> rb option

val set_buffer : t -> string -> (int * Abdm.Record.t) list -> rb

val drop_buffers : t -> unit
