(** The kernel mapping subsystem (KMS) and kernel controller (KC) of the
    CODASYL-DML language interface: translates each DML statement into one
    or more ABDL requests (Chapter VI) and executes them against the
    attribute-based kernel, maintaining the Currency Indicator Table, the
    User Work Area, and the per-set result buffers.

    The same engine serves both targets: an AB(network) database (every
    non-SYSTEM set member-held — the Emdi translation) and an
    AB(functional) database (set handling switched on the set's origin in
    the functional schema — the thesis's modified translation). *)

type outcome =
  | Done of string  (** statement completed; human-readable note *)
  | Found of { dbkey : int; record_type : string }  (** FIND success *)
  | End_of_set  (** FIND ran off the set occurrence / found nothing *)
  | Got of (string * Abdm.Value.t) list  (** GET result, now in the UWA *)
  | Stored of { dbkey : int }  (** STORE success *)

(** [execute session stmt] runs one statement. [Error msg] covers both
    syntactic misuse (unknown record/set) and the paper's constraint
    aborts (automatic-insertion CONNECT, duplicate STORE, overlap
    violation, ERASE of a referenced record, ERASE ALL). *)
val execute : Session.t -> Ast.stmt -> (outcome, string) result

(** [run_program session stmts] executes statements in order (continuing
    past errors, like the interactive interface), pairing each with its
    outcome. *)
val run_program :
  Session.t -> Ast.stmt list -> (Ast.stmt * (outcome, string) result) list

val outcome_to_string : outcome -> string

(** [translate session stmt] — dry-run KMS view: executes the statement on
    a throwaway copy of nothing but the request log, i.e. runs [execute]
    and returns the ABDL requests it issued (the §III.A one-to-many
    correspondence). State changes do persist; use on a scratch session
    for pure previews. *)
val translate :
  Session.t -> Ast.stmt -> (outcome, string) result * Abdl.Ast.request list
