type position =
  | First
  | Last
  | Next
  | Prior

type find =
  | Find_any of { record : string; items : string list }
  | Find_current of { record : string; set : string }
  | Find_duplicate of { set : string; record : string; items : string list }
  | Find_position of { pos : position; record : string; set : string }
  | Find_owner of { set : string }
  | Find_within_current of { record : string; set : string; items : string list }

type get =
  | Get_current
  | Get_record of string
  | Get_items of { items : string list; record : string }

type stmt =
  | Move of { value : Abdm.Value.t; item : string; record : string }
  | Find of find
  | Get of get
  | Store of string
  | Connect of { record : string; sets : string list }
  | Disconnect of { record : string; sets : string list }
  | Modify of { record : string; items : string list }
  | Erase of { record : string; all : bool }
  | Perform_until_eof of stmt list

let position_to_string = function
  | First -> "FIRST"
  | Last -> "LAST"
  | Next -> "NEXT"
  | Prior -> "PRIOR"

let find_to_string = function
  | Find_any { record; items } ->
    Printf.sprintf "FIND ANY %s USING %s IN %s" record
      (String.concat ", " items) record
  | Find_current { record; set } ->
    Printf.sprintf "FIND CURRENT %s WITHIN %s" record set
  | Find_duplicate { set; record; items } ->
    Printf.sprintf "FIND DUPLICATE WITHIN %s USING %s IN %s" set
      (String.concat ", " items) record
  | Find_position { pos; record; set } ->
    Printf.sprintf "FIND %s %s WITHIN %s" (position_to_string pos) record set
  | Find_owner { set } -> Printf.sprintf "FIND OWNER WITHIN %s" set
  | Find_within_current { record; set; items } ->
    Printf.sprintf "FIND %s WITHIN %s CURRENT USING %s IN %s" record set
      (String.concat ", " items) record

let get_to_string = function
  | Get_current -> "GET"
  | Get_record record -> Printf.sprintf "GET %s" record
  | Get_items { items; record } ->
    Printf.sprintf "GET %s IN %s" (String.concat ", " items) record

let rec to_string = function
  | Move { value; item; record } ->
    Printf.sprintf "MOVE %s TO %s IN %s" (Abdm.Value.to_string value) item record
  | Find find -> find_to_string find
  | Get get -> get_to_string get
  | Store record -> Printf.sprintf "STORE %s" record
  | Connect { record; sets } ->
    Printf.sprintf "CONNECT %s TO %s" record (String.concat ", " sets)
  | Disconnect { record; sets } ->
    Printf.sprintf "DISCONNECT %s FROM %s" record (String.concat ", " sets)
  | Modify { record; items = [] } -> Printf.sprintf "MODIFY %s" record
  | Modify { record; items } ->
    Printf.sprintf "MODIFY %s IN %s" (String.concat ", " items) record
  | Erase { record; all } ->
    if all then Printf.sprintf "ERASE ALL %s" record
    else Printf.sprintf "ERASE %s" record
  | Perform_until_eof body ->
    Printf.sprintf "PERFORM UNTIL EOF %s END PERFORM"
      (String.concat "; " (List.map to_string body))

let pp ppf stmt = Format.pp_print_string ppf (to_string stmt)
