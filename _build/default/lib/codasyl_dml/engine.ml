type outcome =
  | Done of string
  | Found of { dbkey : int; record_type : string }
  | End_of_set
  | Got of (string * Abdm.Value.t) list
  | Stored of { dbkey : int }

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt

(* How a set stores its instance-level reference. *)
type set_kind =
  | K_system
  | K_isa
  | K_member_held
  | K_owner_held

let set_kind (session : Session.t) set_name =
  match session.flavor with
  | Mapping.Ab_schema.Net schema ->
    begin
      match Network.Schema.find_set schema set_name with
      | Some s when String.equal s.set_owner Network.Schema.system_owner ->
        Some K_system
      | Some _ -> Some K_member_held
      | None -> None
    end
  | Mapping.Ab_schema.Fun t ->
    match Transformer.Transform.origin_of_set t set_name with
    | Some Transformer.Transform.O_system -> Some K_system
    | Some Transformer.Transform.O_isa -> Some K_isa
    | Some (Transformer.Transform.O_function_member _)
    | Some (Transformer.Transform.O_link _) -> Some K_member_held
    | Some (Transformer.Transform.O_function_owner _) -> Some K_owner_held
    | None -> None

let find_set (session : Session.t) name =
  match Network.Schema.find_set (Session.net_schema session) name with
  | Some s -> Ok s
  | None -> err "unknown set type %S" name

let find_record_type (session : Session.t) name =
  match Network.Schema.find_record (Session.net_schema session) name with
  | Some r -> Ok r
  | None -> err "unknown record type %S" name

let kind_of (session : Session.t) set_name =
  match set_kind session set_name with
  | Some k -> Ok k
  | None -> err "set %S has no kernel mapping" set_name

(* --- currency helpers ------------------------------------------------- *)

let entity_key record_type record ~dbkey =
  Mapping.Ab_schema.entity_key record_type record ~dbkey

let run_unit_entry (session : Session.t) =
  match Network.Currency.run_unit session.cit with
  | Some entry -> Ok entry
  | None -> err "the current of the run-unit is null"

let fetch (session : Session.t) dbkey =
  match Mapping.Kernel.get session.kernel dbkey with
  | Some record -> Ok record
  | None -> err "dangling currency indicator (dbkey %d)" dbkey

let run_unit_of_type (session : Session.t) record_type =
  let* entry = run_unit_entry session in
  if not (String.equal entry.cur_record_type record_type) then
    err "the current of the run-unit is a %s, not a %s" entry.cur_record_type
      record_type
  else
    let* record = fetch session entry.cur_dbkey in
    Ok (entry, record, entity_key record_type record ~dbkey:entry.cur_dbkey)

(* After a successful FIND/STORE: update run-unit, record-type and
   set-type currency indicators from the found record's reference
   attributes. *)
let update_currencies (session : Session.t) (dbkey, record) =
  let record_type =
    match Abdm.Record.file record with
    | Some f -> f
    | None -> "?"
  in
  let entry =
    { Network.Currency.cur_dbkey = dbkey; cur_record_type = record_type }
  in
  Network.Currency.set_run_unit session.cit entry;
  let schema = Session.net_schema session in
  let key = entity_key record_type record ~dbkey in
  List.iter
    (fun (s : Network.Types.set_type) ->
      let kind = set_kind session s.set_name in
      if String.equal s.set_member record_type then begin
        match kind with
        | Some (K_member_held | K_isa) ->
          begin
            match Abdm.Record.value_of record s.set_name with
            | Some (Abdm.Value.Int owner_key) ->
              Network.Currency.set_set_owner session.cit s.set_name owner_key;
              Network.Currency.set_set_member session.cit s.set_name entry
            | Some _ | None ->
              Network.Currency.set_set_member session.cit s.set_name entry
          end
        | Some (K_system | K_owner_held) | None ->
          Network.Currency.set_set_member session.cit s.set_name entry
      end;
      if String.equal s.set_owner record_type then
        Network.Currency.set_set_owner session.cit s.set_name key)
    schema.Network.Schema.sets;
  entry

(* --- set-occurrence retrieval ----------------------------------------- *)

let int_pred attr key =
  Abdm.Predicate.make attr Abdm.Predicate.Eq (Abdm.Value.Int key)

(* All member records of the current occurrence of [set]; generates the
   auxiliary retrieve requests of §VI.B.4. *)
let members_of_set (session : Session.t) (s : Network.Types.set_type)
    ~owner_key =
  let* kind = kind_of session s.set_name in
  match kind with
  | K_system ->
    Ok
      (Session.retrieve_records session
         (Abdm.Query.conj [ Abdm.Predicate.file_eq s.set_member ]))
  | K_member_held | K_isa ->
    begin
      match owner_key with
      | Some key ->
        Ok
          (Session.retrieve_records session
             (Abdm.Query.conj
                [ Abdm.Predicate.file_eq s.set_member; int_pred s.set_name key ]))
      | None -> err "set %S: no current set occurrence (owner is null)" s.set_name
    end
  | K_owner_held ->
    match owner_key with
    | None -> err "set %S: no current set occurrence (owner is null)" s.set_name
    | Some key ->
      (* First ARR: the owner's duplicated copies carry the member keys. *)
      let copies =
        Session.retrieve_records session
          (Abdm.Query.conj
             [ Abdm.Predicate.file_eq s.set_owner; int_pred s.set_owner key ])
      in
      let member_keys =
        List.filter_map
          (fun (_, record) ->
            match Abdm.Record.value_of record s.set_name with
            | Some (Abdm.Value.Int k) -> Some k
            | Some _ | None -> None)
          copies
        |> List.sort_uniq Int.compare
      in
      if member_keys = [] then Ok []
      else
        (* Second ARR: fetch the member records by key, one disjunct each. *)
        let query =
          List.map
            (fun k ->
              [ Abdm.Predicate.file_eq s.set_member; int_pred s.set_member k ])
            member_keys
        in
        (* Keep only primary records (key attribute = dbkey would also
           admit copies; primaries are the ones whose key equals their own
           unique key exactly once — take the first record per key). *)
        let records = Session.retrieve_records session query in
        let seen = Hashtbl.create 16 in
        let primaries =
          List.filter
            (fun (dbkey, record) ->
              let k = entity_key s.set_member record ~dbkey in
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
            records
        in
        Ok primaries

(* Primary record of an entity by unique key. *)
let primary_record (session : Session.t) record_type key =
  let records =
    Session.retrieve_records session
      (Abdm.Query.conj
         [ Abdm.Predicate.file_eq record_type; int_pred record_type key ])
  in
  match records with
  | [] -> err "no %s record with key %d" record_type key
  | (dbkey, record) :: _ -> Ok (dbkey, record)

(* --- UWA access -------------------------------------------------------- *)

let uwa_value (session : Session.t) ~record ~item =
  match Network.Uwa.get session.uwa ~record ~item with
  | Some v -> Ok v
  | None -> err "no value for %s IN %s in the user work area" item record

let check_items (session : Session.t) record_type items =
  match Abdm.Descriptor.find_file session.descriptor record_type with
  | None -> err "unknown record type %S" record_type
  | Some file ->
    let known (a : Abdm.Descriptor.attribute) = a.attr_name in
    let names = List.map known file.attributes in
    match List.find_opt (fun item -> not (List.mem item names)) items with
    | Some bad -> err "record %s has no item %S" record_type bad
    | None -> Ok ()

(* --- FIND -------------------------------------------------------------- *)

let exec_find_any session (record : string) items =
  let* () = check_items session record items in
  let* preds =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* v = uwa_value session ~record ~item in
        Ok (Abdm.Predicate.make item Abdm.Predicate.Eq v :: acc))
      (Ok []) items
  in
  let query = Abdm.Query.conj (Abdm.Predicate.file_eq record :: List.rev preds) in
  match Session.retrieve_records session query with
  | [] -> Ok End_of_set
  | ((dbkey, found) :: _) as entries ->
    (* §VI.B.1: the results are placed in the request buffer — under every
       set the record type belongs to as member, so a later FIND
       DUPLICATE/FIRST/NEXT can walk them (the §VI.B.3 assumption) *)
    List.iter
      (fun (s : Network.Types.set_type) ->
        if String.equal s.set_member record then begin
          let rb = Session.set_buffer session s.set_name entries in
          rb.Session.rb_cursor <- 0
        end)
      (Session.net_schema session).Network.Schema.sets;
    let entry = update_currencies session (dbkey, found) in
    Ok (Found { dbkey = entry.cur_dbkey; record_type = entry.cur_record_type })

let exec_find_current session record set =
  let* _s = find_set session set in
  match Network.Currency.set_current session.Session.cit set with
  | Some { cur_member = Some entry; _ }
    when String.equal entry.cur_record_type record ->
    Network.Currency.set_run_unit session.Session.cit entry;
    Ok (Found { dbkey = entry.cur_dbkey; record_type = entry.cur_record_type })
  | Some { cur_member = Some entry; _ } ->
    err "current of set %s is a %s, not a %s" set entry.cur_record_type record
  | Some { cur_member = None; _ } | None ->
    err "set %s has no current member" set

let exec_find_duplicate session set record items =
  let* _s = find_set session set in
  let* () = check_items session record items in
  match Session.buffer session set with
  | None -> err "set %s: no records in the request buffer (FIND FIRST first)" set
  | Some rb ->
    let* current =
      match Network.Currency.set_current session.Session.cit set with
      | Some { cur_member = Some entry; _ } -> Ok entry
      | Some { cur_member = None; _ } | None ->
        err "set %s has no current member" set
    in
    let* cur_record = fetch session current.cur_dbkey in
    let wanted =
      List.map
        (fun item -> item, Abdm.Record.value_of cur_record item)
        items
    in
    let matches (_, candidate) =
      (match Abdm.Record.file candidate with
       | Some f -> String.equal f record
       | None -> false)
      && List.for_all
           (fun (item, v) -> Abdm.Record.value_of candidate item = v)
           wanted
    in
    let n = Array.length rb.rb_entries in
    let rec scan i =
      if i >= n then Ok End_of_set
      else
        let (dbkey, _) as entry = rb.rb_entries.(i) in
        if dbkey <> current.cur_dbkey && matches entry then begin
          rb.rb_cursor <- i;
          let e = update_currencies session entry in
          Ok (Found { dbkey = e.cur_dbkey; record_type = e.cur_record_type })
        end
        else scan (i + 1)
    in
    scan (rb.rb_cursor + 1)

(* Owner-direction iteration (the paper's FIND FIRST person WITHIN
   person_student): walk the distinct owners referenced by the member
   records. Only member-held sets support it. *)
let owner_entries session (s : Network.Types.set_type) =
  let* kind = kind_of session s.set_name in
  match kind with
  | K_member_held | K_isa ->
    let members =
      match Session.buffer session s.set_name with
      | Some rb when Array.length rb.rb_entries > 0 ->
        Array.to_list rb.rb_entries
      | Some _ | None ->
        Session.retrieve_records session
          (Abdm.Query.conj [ Abdm.Predicate.file_eq s.set_member ])
    in
    let keys =
      List.filter_map
        (fun (_, record) ->
          match Abdm.Record.value_of record s.set_name with
          | Some (Abdm.Value.Int k) -> Some k
          | Some _ | None -> None)
        members
      |> List.sort_uniq Int.compare
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | key :: rest ->
        let* entry = primary_record session s.set_owner key in
        collect (entry :: acc) rest
    in
    collect [] keys
  | K_system | K_owner_held ->
    err "set %s: cannot iterate owners of this set" s.set_name

let exec_find_position session pos record set =
  let* s = find_set session set in
  let* entries_needed =
    match pos with
    | Ast.First | Ast.Last -> Ok true
    | Ast.Next | Ast.Prior -> Ok false
  in
  let* rb =
    if entries_needed then
      let* entries =
        if String.equal s.set_member record then
          let owner_key =
            match Network.Currency.set_current session.Session.cit set with
            | Some { cur_owner; _ } -> cur_owner
            | None -> None
          in
          members_of_set session s ~owner_key
        else if String.equal s.set_owner record then owner_entries session s
        else
          err "record %s is neither member nor owner of set %s" record set
      in
      Ok (Session.set_buffer session set entries)
    else
      match Session.buffer session set with
      | Some rb -> Ok rb
      | None ->
        err "set %s: no records in the request buffer (FIND FIRST first)" set
  in
  let n = Array.length rb.rb_entries in
  let target =
    match pos with
    | Ast.First -> 0
    | Ast.Last -> n - 1
    | Ast.Next -> rb.rb_cursor + 1
    | Ast.Prior -> rb.rb_cursor - 1
  in
  if target < 0 || target >= n then Ok End_of_set
  else begin
    rb.rb_cursor <- target;
    let entry = update_currencies session rb.rb_entries.(target) in
    Ok (Found { dbkey = entry.cur_dbkey; record_type = entry.cur_record_type })
  end

let exec_find_owner session set =
  let* s = find_set session set in
  if String.equal s.set_owner Network.Schema.system_owner then
    err "set %s is owned by SYSTEM" set
  else
    match Network.Currency.set_current session.Session.cit set with
    | Some { cur_owner = Some key; _ } ->
      let* (dbkey, record) = primary_record session s.set_owner key in
      let entry = update_currencies session (dbkey, record) in
      Ok (Found { dbkey = entry.cur_dbkey; record_type = entry.cur_record_type })
    | Some { cur_owner = None; _ } | None ->
      err "set %s has no current owner" set

let exec_find_within_current session record set items =
  let* s = find_set session set in
  if not (String.equal s.set_member record) then
    err "record %s is not a member of set %s" record set
  else
    let* () = check_items session record items in
    let owner_key =
      match Network.Currency.set_current session.Session.cit set with
      | Some { cur_owner; _ } -> cur_owner
      | None -> None
    in
    let* members = members_of_set session s ~owner_key in
    let* preds =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = uwa_value session ~record ~item in
          Ok ((item, v) :: acc))
        (Ok []) items
    in
    let matches (_, candidate) =
      List.for_all
        (fun (item, v) ->
          match Abdm.Record.value_of candidate item with
          | Some actual -> Abdm.Value.equal actual v
          | None -> false)
        preds
    in
    let hits = List.filter matches members in
    let rb = Session.set_buffer session set hits in
    match hits with
    | [] -> Ok End_of_set
    | first :: _ ->
      rb.rb_cursor <- 0;
      let entry = update_currencies session first in
      Ok (Found { dbkey = entry.cur_dbkey; record_type = entry.cur_record_type })

let exec_find session = function
  | Ast.Find_any { record; items } -> exec_find_any session record items
  | Ast.Find_current { record; set } -> exec_find_current session record set
  | Ast.Find_duplicate { set; record; items } ->
    exec_find_duplicate session set record items
  | Ast.Find_position { pos; record; set } ->
    exec_find_position session pos record set
  | Ast.Find_owner { set } -> exec_find_owner session set
  | Ast.Find_within_current { record; set; items } ->
    exec_find_within_current session record set items

(* --- GET --------------------------------------------------------------- *)

let displayable record =
  List.filter
    (fun (kw : Abdm.Keyword.t) ->
      not (String.equal kw.attribute Abdm.Keyword.file_attribute))
    record.Abdm.Record.keywords
  |> List.map (fun (kw : Abdm.Keyword.t) -> kw.attribute, kw.value)

let exec_get session get =
  let* entry = run_unit_entry session in
  let* record = fetch session entry.cur_dbkey in
  let deliver record_type values =
    Network.Uwa.load session.Session.uwa ~record:record_type values;
    Ok (Got values)
  in
  match get with
  | Ast.Get_current -> deliver entry.cur_record_type (displayable record)
  | Ast.Get_record record_type ->
    if String.equal record_type entry.cur_record_type then
      deliver record_type (displayable record)
    else
      err "current of run-unit is a %s, not a %s" entry.cur_record_type
        record_type
  | Ast.Get_items { items; record = record_type } ->
    if not (String.equal record_type entry.cur_record_type) then
      err "current of run-unit is a %s, not a %s" entry.cur_record_type
        record_type
    else
      let* () = check_items session record_type items in
      let values =
        List.map
          (fun item ->
            ( item,
              match Abdm.Record.value_of record item with
              | Some v -> v
              | None -> Abdm.Value.Null ))
          items
      in
      deliver record_type values

(* --- STORE ------------------------------------------------------------- *)

let isa_sets (session : Session.t) record =
  match session.flavor with
  | Mapping.Ab_schema.Fun t -> Transformer.Transform.isa_sets_of_member t record
  | Mapping.Ab_schema.Net _ -> []

let exec_store session record_type =
  let* _r = find_record_type session record_type in
  let* file =
    match Abdm.Descriptor.find_file session.Session.descriptor record_type with
    | Some f -> Ok f
    | None -> err "record type %S has no kernel file" record_type
  in
  (* 1. Duplicate condition (§VI.G): RETRIEVE on items carrying
     DUPLICATES NOT ALLOWED. *)
  let unique_items =
    List.filter_map
      (fun (a : Abdm.Descriptor.attribute) ->
        if a.attr_unique && not (String.equal a.attr_name record_type) then
          match Network.Uwa.get session.Session.uwa ~record:record_type
                  ~item:a.attr_name with
          | Some v -> Some (a.attr_name, v)
          | None -> None
        else None)
      file.attributes
  in
  let* () =
    if unique_items = [] then Ok ()
    else
      let query =
        Abdm.Query.conj
          (Abdm.Predicate.file_eq record_type
           :: List.map
                (fun (item, v) -> Abdm.Predicate.make item Abdm.Predicate.Eq v)
                unique_items)
      in
      match
        Session.issue session
          (Abdl.Ast.retrieve query [ Abdl.Ast.T_attr record_type ])
      with
      | Abdl.Exec.Rows [] -> Ok ()
      | Abdl.Exec.Rows _ -> err "STORE %s: DUPLICATES NOT ALLOWED" record_type
      | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
        Ok ()
  in
  (* 2. ISA owners must be current (set selection is BY APPLICATION). *)
  let* isa_owner_keys =
    List.fold_left
      (fun acc (s : Network.Types.set_type) ->
        let* acc = acc in
        match Network.Currency.set_current session.Session.cit s.set_name with
        | Some { cur_owner = Some key; _ } -> Ok ((s, key) :: acc)
        | Some { cur_owner = None; _ } | None ->
          err
            "STORE %s: set %s has no current owner (set selection is BY \
             APPLICATION)"
            record_type s.set_name)
      (Ok []) (isa_sets session record_type)
  in
  (* 3. Overlap constraints (§V.E / §VI.G): only {e terminal} subtypes of a
     hierarchy conflict. From each current ISA owner instance we walk UP to
     every ancestor instance, then DOWN to every terminal-subtype record
     the entity already possesses; each such terminal type must be paired
     with the stored type in the Overlap Table. *)
  let* () =
    match session.Session.flavor with
    | Mapping.Ab_schema.Net _ -> Ok ()
    | Mapping.Ab_schema.Fun t
      when not
             (Daplex.Schema.is_terminal t.Transformer.Transform.source
                record_type) ->
      Ok ()
    | Mapping.Ab_schema.Fun t ->
      let schema = t.Transformer.Transform.source in
      let isa_between ~super ~sub =
        List.find_opt
          (fun (s : Network.Types.set_type) ->
            String.equal s.set_owner super
            && String.equal s.set_member sub
            && Transformer.Transform.origin_of_set t s.set_name
               = Some Transformer.Transform.O_isa)
          (Session.net_schema session).Network.Schema.sets
      in
      (* entity keys of [sub] records attached to the [super] instance *)
      let child_instances ~super ~super_key ~sub =
        match isa_between ~super ~sub with
        | None -> []
        | Some s ->
          Session.retrieve_records session
            (Abdm.Query.conj
               [ Abdm.Predicate.file_eq sub; int_pred s.set_name super_key ])
          |> List.map (fun (dbkey, r) -> entity_key sub r ~dbkey)
          |> List.sort_uniq Int.compare
      in
      (* all (type, key) ancestor instances, the given one included *)
      let rec instance_and_ancestors acc (type_name, key) =
        if List.mem (type_name, key) acc then acc
        else
          let acc = (type_name, key) :: acc in
          let record =
            match
              Session.retrieve_records session
                (Abdm.Query.conj
                   [ Abdm.Predicate.file_eq type_name; int_pred type_name key ])
            with
            | (_, r) :: _ -> Some r
            | [] -> None
          in
          match record with
          | None -> acc
          | Some r ->
            List.fold_left
              (fun acc super ->
                match isa_between ~super ~sub:type_name with
                | Some s ->
                  begin
                    match Abdm.Record.value_of r s.set_name with
                    | Some (Abdm.Value.Int super_key) ->
                      instance_and_ancestors acc (super, super_key)
                    | Some _ | None -> acc
                  end
                | None -> acc)
              acc
              (Daplex.Schema.supertypes_of schema type_name)
      in
      (* terminal-subtype record types the instance already has below it *)
      let rec terminals_below (type_name, key) =
        List.concat_map
          (fun (sub : Daplex.Types.subtype) ->
            let instances =
              child_instances ~super:type_name ~super_key:key ~sub:sub.sub_name
            in
            if instances = [] then []
            else if Daplex.Schema.is_terminal schema sub.sub_name then
              [ sub.sub_name ]
            else
              List.concat_map
                (fun k -> terminals_below (sub.sub_name, k))
                instances)
          (Daplex.Schema.subtypes_of schema type_name)
      in
      List.fold_left
        (fun acc ((s : Network.Types.set_type), owner_key) ->
          let* () = acc in
          let roots = instance_and_ancestors [] (s.set_owner, owner_key) in
          let present =
            List.concat_map terminals_below roots
            |> List.sort_uniq String.compare
          in
          List.fold_left
            (fun acc terminal ->
              let* () = acc in
              if
                Transformer.Overlap_table.allowed
                  t.Transformer.Transform.overlap record_type terminal
              then Ok ()
              else
                err
                  "STORE %s: overlap constraint violated (entity already a %s)"
                  record_type terminal)
            (Ok ()) present)
        (Ok ()) isa_owner_keys
  in
  (* 4. Build and INSERT the record: UWA values for items, ISA references
     from the current set occurrences, other references null. *)
  let keywords =
    Abdm.Keyword.file record_type
    :: List.map
         (fun (a : Abdm.Descriptor.attribute) ->
           let isa_value =
             List.find_map
               (fun ((s : Network.Types.set_type), key) ->
                 if String.equal s.set_name a.attr_name then
                   Some (Abdm.Value.Int key)
                 else None)
               isa_owner_keys
           in
           match isa_value with
           | Some v -> Abdm.Keyword.make a.attr_name v
           | None when String.equal a.attr_name record_type ->
             (* the artificial unique key is generated, never user-supplied *)
             Abdm.Keyword.make a.attr_name Abdm.Value.Null
           | None ->
             let v =
               match
                 Network.Uwa.get session.Session.uwa ~record:record_type
                   ~item:a.attr_name
               with
               | Some v -> v
               | None -> Abdm.Value.Null
             in
             Abdm.Keyword.make a.attr_name v)
         file.attributes
  in
  let record = Abdm.Record.make keywords in
  match Session.issue session (Abdl.Ast.Insert record) with
  | Abdl.Exec.Inserted dbkey ->
    (* fix the artificial unique key to the primary record's dbkey *)
    let keyed = Abdm.Record.set record record_type (Abdm.Value.Int dbkey) in
    Mapping.Kernel.replace session.Session.kernel dbkey keyed;
    let _entry = update_currencies session (dbkey, keyed) in
    Ok (Stored { dbkey })
  | Abdl.Exec.Rows _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
    err "STORE %s: kernel refused the INSERT" record_type

(* --- CONNECT / DISCONNECT ---------------------------------------------- *)

let owner_currency (session : Session.t) set =
  match Network.Currency.set_current session.cit set with
  | Some { cur_owner = Some key; _ } -> Ok key
  | Some { cur_owner = None; _ } | None ->
    err "set %s has no current owner occurrence" set

let exec_connect_one session record set =
  let* s = find_set session set in
  let* kind = kind_of session set in
  let* () =
    match s.set_insertion with
    | Network.Types.Ins_manual -> Ok ()
    | Network.Types.Ins_automatic ->
      err "CONNECT: insertion for set %s is AUTOMATIC" set
  in
  let* (entry, _record, member_key) = run_unit_of_type session record in
  let* () =
    if String.equal s.set_member record then Ok ()
    else err "record %s is not a member of set %s" record set
  in
  match kind with
  | K_system | K_isa -> err "CONNECT: set %s is not connectable" set
  | K_member_held ->
    let* owner_key = owner_currency session set in
    let query =
      Abdm.Query.conj
        [ Abdm.Predicate.file_eq record; int_pred record member_key ]
    in
    let _ =
      Session.issue session
        (Abdl.Ast.Update
           (query, [ Abdm.Modifier.Set_const (set, Abdm.Value.Int owner_key) ]))
    in
    Network.Currency.set_set_owner session.Session.cit set owner_key;
    Network.Currency.set_set_member session.Session.cit set entry;
    Ok (Done (Printf.sprintf "connected %s to %s" record set))
  | K_owner_held ->
    let* owner_key = owner_currency session set in
    if not (String.equal s.set_member record) then
      err "record %s is not a member of set %s" record set
    else begin
      let copies =
        Session.retrieve_records session
          (Abdm.Query.conj
             [ Abdm.Predicate.file_eq s.set_owner; int_pred s.set_owner owner_key ])
      in
      let null_copy (_, c) =
        match Abdm.Record.value_of c set with
        | Some Abdm.Value.Null | None -> true
        | Some _ -> false
      in
      if List.exists null_copy copies then begin
        (* §VI.D.2.a cases (1)-(2): fill the null-valued copies *)
        let query =
          Abdm.Query.conj
            [
              Abdm.Predicate.file_eq s.set_owner;
              int_pred s.set_owner owner_key;
              Abdm.Predicate.make set Abdm.Predicate.Eq Abdm.Value.Null;
            ]
        in
        let _ =
          Session.issue session
            (Abdl.Ast.Update
               ( query,
                 [ Abdm.Modifier.Set_const (set, Abdm.Value.Int member_key) ] ))
        in
        Network.Currency.set_set_member session.Session.cit set entry;
        Ok (Done (Printf.sprintf "connected %s to %s" record set))
      end
      else begin
        (* cases (3)-(4): duplicate the owner record(s) with the new
           member's key in the set attribute *)
        let distinct =
          let seen = Hashtbl.create 8 in
          List.filter
            (fun (_, c) ->
              let shape =
                Abdm.Record.to_string (Abdm.Record.set c set Abdm.Value.Null)
              in
              if Hashtbl.mem seen shape then false
              else begin
                Hashtbl.add seen shape ();
                true
              end)
            copies
        in
        List.iter
          (fun (_, c) ->
            let dup = Abdm.Record.set c set (Abdm.Value.Int member_key) in
            ignore (Session.issue session (Abdl.Ast.Insert dup)))
          distinct;
        Network.Currency.set_set_member session.Session.cit set entry;
        Ok (Done (Printf.sprintf "connected %s to %s" record set))
      end
    end

let exec_disconnect_one session record set =
  let* s = find_set session set in
  let* kind = kind_of session set in
  let* () =
    match s.set_retention with
    | Network.Types.Ret_optional -> Ok ()
    | Network.Types.Ret_fixed | Network.Types.Ret_mandatory ->
      err "DISCONNECT: retention for set %s is %s" set
        (Network.Types.retention_to_string s.set_retention)
  in
  let* () =
    if String.equal s.set_member record then Ok ()
    else err "record %s is not a member of set %s" record set
  in
  let* (_entry, _record, member_key) = run_unit_of_type session record in
  match kind with
  | K_system | K_isa -> err "DISCONNECT: set %s is not disconnectable" set
  | K_member_held ->
    let base =
      [ Abdm.Predicate.file_eq record; int_pred record member_key ]
    in
    let query =
      match Network.Currency.set_current session.Session.cit set with
      | Some { cur_owner = Some owner_key; _ } ->
        Abdm.Query.conj (base @ [ int_pred set owner_key ])
      | Some { cur_owner = None; _ } | None -> Abdm.Query.conj base
    in
    let _ =
      Session.issue session
        (Abdl.Ast.Update (query, [ Abdm.Modifier.Set_const (set, Abdm.Value.Null) ]))
    in
    Ok (Done (Printf.sprintf "disconnected %s from %s" record set))
  | K_owner_held ->
    let* owner_key = owner_currency session set in
    let copies =
      Session.retrieve_records session
        (Abdm.Query.conj
           [ Abdm.Predicate.file_eq s.set_owner; int_pred s.set_owner owner_key ])
    in
    let member_keys =
      List.filter_map
        (fun (_, c) ->
          match Abdm.Record.value_of c set with
          | Some (Abdm.Value.Int k) -> Some k
          | Some _ | None -> None)
        copies
      |> List.sort_uniq Int.compare
    in
    let query =
      Abdm.Query.conj
        [
          Abdm.Predicate.file_eq s.set_owner;
          int_pred s.set_owner owner_key;
          int_pred set member_key;
        ]
    in
    if List.length member_keys > 1 then begin
      (* multiple members: delete the copies that reference the member *)
      let _ = Session.issue session (Abdl.Ast.Delete query) in
      Ok (Done (Printf.sprintf "disconnected %s from %s" record set))
    end
    else begin
      (* singleton function set: null the value out *)
      let _ =
        Session.issue session
          (Abdl.Ast.Update (query, [ Abdm.Modifier.Set_const (set, Abdm.Value.Null) ]))
      in
      Ok (Done (Printf.sprintf "disconnected %s from %s" record set))
    end

(* CONNECT/DISCONNECT over several sets is all-or-nothing: a constraint
   failure on a later set must not leave earlier sets half-updated. *)
let exec_multi session record sets one =
  Mapping.Kernel.atomically session.Session.kernel (fun () ->
      List.fold_left
        (fun acc set ->
          let* _ = acc in
          one session record set)
        (Ok (Done "")) sets)

(* --- MODIFY ------------------------------------------------------------ *)

let exec_modify session record items =
  let* (_entry, current, key) = run_unit_of_type session record in
  let* items =
    match items with
    | [] ->
      (* whole-record MODIFY: every UWA-supplied item of the template *)
      let template = Network.Uwa.template session.Session.uwa ~record in
      if template = [] then err "MODIFY %s: user work area is empty" record
      else Ok (List.map fst template)
    | items ->
      let* () = check_items session record items in
      Ok items
  in
  let* () =
    if List.mem record items then
      err "MODIFY %s: cannot modify the record key attribute" record
    else Ok ()
  in
  ignore current;
  let query =
    Abdm.Query.conj [ Abdm.Predicate.file_eq record; int_pred record key ]
  in
  (* one UPDATE request per modified field, as in §VI.F *)
  let* () =
    List.fold_left
      (fun acc item ->
        let* () = acc in
        let* v = uwa_value session ~record ~item in
        let _ =
          Session.issue session
            (Abdl.Ast.Update (query, [ Abdm.Modifier.Set_const (item, v) ]))
        in
        Ok ())
      (Ok ()) items
  in
  Ok (Done (Printf.sprintf "modified %d item(s) of %s" (List.length items) record))

(* --- ERASE ------------------------------------------------------------- *)

let exec_erase session record =
  let* (_entry, _current, key) = run_unit_of_type session record in
  let schema = Session.net_schema session in
  (* CODASYL constraint: the record may not own a non-empty set
     occurrence. For every set owned by this record type, look for member
     records referencing the key. *)
  let owned =
    List.filter
      (fun (s : Network.Types.set_type) -> String.equal s.set_owner record)
      schema.Network.Schema.sets
  in
  let* () =
    List.fold_left
      (fun acc (s : Network.Types.set_type) ->
        let* () = acc in
        let* kind = kind_of session s.set_name in
        match kind with
        | K_member_held | K_isa ->
          let query =
            Abdm.Query.conj
              [ Abdm.Predicate.file_eq s.set_member; int_pred s.set_name key ]
          in
          begin
            match
              Session.issue session
                (Abdl.Ast.retrieve query [ Abdl.Ast.T_attr s.set_name ])
            with
            | Abdl.Exec.Rows [] -> Ok ()
            | Abdl.Exec.Rows _ ->
              err "ERASE %s: owner of non-empty set occurrence %s" record
                s.set_name
            | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
              Ok ()
          end
        | K_owner_held ->
          (* the record's own copies carry the references *)
          let query =
            Abdm.Query.conj
              [
                Abdm.Predicate.file_eq record;
                int_pred record key;
                Abdm.Predicate.make s.set_name Abdm.Predicate.Neq
                  Abdm.Value.Null;
              ]
          in
          begin
            match
              Session.issue session
                (Abdl.Ast.retrieve query [ Abdl.Ast.T_attr s.set_name ])
            with
            | Abdl.Exec.Rows [] -> Ok ()
            | Abdl.Exec.Rows _ ->
              err "ERASE %s: owner of non-empty set occurrence %s" record
                s.set_name
            | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
              Ok ()
          end
        | K_system -> Ok ())
      (Ok ()) owned
  in
  (* Daplex constraint: the entity may not be referenced by a database
     function — owner-held sets in which this record is the member store
     references to it in the owner's file. *)
  let referencing =
    List.filter
      (fun (s : Network.Types.set_type) ->
        String.equal s.set_member record
        && set_kind session s.set_name = Some K_owner_held)
      schema.Network.Schema.sets
  in
  let* () =
    List.fold_left
      (fun acc (s : Network.Types.set_type) ->
        let* () = acc in
        let query =
          Abdm.Query.conj
            [ Abdm.Predicate.file_eq s.set_owner; int_pred s.set_name key ]
        in
        match
          Session.issue session
            (Abdl.Ast.retrieve query [ Abdl.Ast.T_attr s.set_name ])
        with
        | Abdl.Exec.Rows [] -> Ok ()
        | Abdl.Exec.Rows _ ->
          err "ERASE %s: entity is referenced by function set %s" record
            s.set_name
        | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
          Ok ())
      (Ok ()) referencing
  in
  (* Collect the doomed dbkeys (the primary and its duplicated copies)
     before deleting, so stale currency can be nulled. *)
  let victims =
    Session.retrieve_records session
      (Abdm.Query.conj [ Abdm.Predicate.file_eq record; int_pred record key ])
  in
  let query =
    Abdm.Query.conj [ Abdm.Predicate.file_eq record; int_pred record key ]
  in
  let deleted =
    match Session.issue session (Abdl.Ast.Delete query) with
    | Abdl.Exec.Deleted n -> n
    | Abdl.Exec.Rows _ | Abdl.Exec.Inserted _ | Abdl.Exec.Updated _ -> 0
  in
  List.iter
    (fun (dbkey, _) -> Network.Currency.forget_key session.Session.cit dbkey)
    victims;
  Session.drop_buffers session;
  Ok (Done (Printf.sprintf "erased %d record(s) of %s" deleted record))

(* --- dispatch ----------------------------------------------------------- *)

let rec execute session (stmt : Ast.stmt) =
  match stmt with
  | Ast.Perform_until_eof body ->
    (* the COBOL idiom of §VI.B.4: repeat the block until a FIND inside it
       runs off its set (the host program's EOF flag). Iterations are
       capped defensively: a block containing no FIND would never set
       EOF. *)
    let max_iterations = 10_000 in
    let fetched = ref [] in
    let rec iterate count =
      if count >= max_iterations then
        err "PERFORM UNTIL EOF: no FIND reached end of set after %d iterations"
          max_iterations
      else
        let rec step = function
          | [] -> `Continue
          | stmt :: rest ->
            match execute session stmt with
            | Ok End_of_set -> `Eof
            | Ok (Got values) ->
              let line =
                values
                |> List.map (fun (attr, v) ->
                       Printf.sprintf "%s=%s" attr (Abdm.Value.to_display v))
                |> String.concat ", "
              in
              fetched := line :: !fetched;
              step rest
            | Ok _ -> step rest
            | Error msg -> `Failed msg
        in
        match step body with
        | `Eof ->
          let report =
            Printf.sprintf "performed %d iteration(s)" count
            :: List.rev !fetched
          in
          Ok (Done (String.concat "\n" report))
        | `Failed msg -> Error msg
        | `Continue -> iterate (count + 1)
    in
    iterate 0
  | Ast.Move { value; item; record } ->
    Network.Uwa.move session.Session.uwa ~record ~item value;
    Ok (Done (Printf.sprintf "moved %s to %s IN %s" (Abdm.Value.to_string value) item record))
  | Ast.Find find -> exec_find session find
  | Ast.Get get -> exec_get session get
  | Ast.Store record -> exec_store session record
  | Ast.Connect { record; sets } ->
    exec_multi session record sets exec_connect_one
  | Ast.Disconnect { record; sets } ->
    exec_multi session record sets exec_disconnect_one
  | Ast.Modify { record; items } -> exec_modify session record items
  | Ast.Erase { all = true; record } ->
    err "ERASE ALL %s: not translated (CODASYL and Daplex constraints clash)"
      record
  | Ast.Erase { all = false; record } -> exec_erase session record

let run_program session stmts =
  List.map (fun stmt -> stmt, execute session stmt) stmts

let outcome_to_string = function
  | Done msg -> if String.equal msg "" then "ok" else msg
  | Found { dbkey; record_type } ->
    Printf.sprintf "found %s (dbkey %d)" record_type dbkey
  | End_of_set -> "end of set"
  | Got values ->
    values
    |> List.map (fun (attr, v) ->
           Printf.sprintf "%s=%s" attr (Abdm.Value.to_display v))
    |> String.concat ", "
  | Stored { dbkey } -> Printf.sprintf "stored (dbkey %d)" dbkey

let translate session stmt =
  let before = List.length session.Session.log in
  let result = execute session stmt in
  let issued =
    let rec take n acc rest =
      if n = 0 then acc
      else
        match rest with
        | [] -> acc
        | r :: more -> take (n - 1) (r :: acc) more
    in
    take (List.length session.Session.log - before) [] session.Session.log
  in
  result, issued
