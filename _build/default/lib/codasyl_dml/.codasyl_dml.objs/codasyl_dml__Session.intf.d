lib/codasyl_dml/session.mli: Abdl Abdm Hashtbl Mapping Network
