lib/codasyl_dml/ast.ml: Abdm Format List Printf String
