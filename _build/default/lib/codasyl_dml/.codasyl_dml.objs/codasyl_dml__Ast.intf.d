lib/codasyl_dml/ast.mli: Abdm Format
