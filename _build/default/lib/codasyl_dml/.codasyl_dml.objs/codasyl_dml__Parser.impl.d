lib/codasyl_dml/parser.ml: Abdl Abdm Ast Daplex List Printf String
