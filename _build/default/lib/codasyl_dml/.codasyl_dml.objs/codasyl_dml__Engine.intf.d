lib/codasyl_dml/engine.mli: Abdl Abdm Ast Session
