lib/codasyl_dml/parser.mli: Ast
