lib/codasyl_dml/engine.ml: Abdl Abdm Array Ast Daplex Hashtbl Int List Mapping Network Printf Result Session String Transformer
