lib/codasyl_dml/session.ml: Abdl Abdm Array Hashtbl List Mapping Network
