exception Parse_error of string

type stream = { mutable toks : Abdl.Lexer.token list }

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let peek s =
  match s.toks with
  | [] -> Abdl.Lexer.EOF
  | tok :: _ -> tok

let advance s =
  match s.toks with
  | [] -> ()
  | _ :: rest -> s.toks <- rest

let next s =
  let tok = peek s in
  advance s;
  tok

let ident s =
  match next s with
  | Abdl.Lexer.IDENT name -> name
  | tok -> fail "expected identifier, got %s" (Abdl.Lexer.token_to_string tok)

let upper = String.uppercase_ascii

let expect_kw s kw =
  match next s with
  | Abdl.Lexer.IDENT name when upper name = kw -> ()
  | tok -> fail "expected %s, got %s" kw (Abdl.Lexer.token_to_string tok)

let kw_is tok kw =
  match tok with
  | Abdl.Lexer.IDENT name -> upper name = kw
  | _ -> false

let literal s =
  match next s with
  | Abdl.Lexer.INT i -> Abdm.Value.Int i
  | Abdl.Lexer.FLOAT f -> Abdm.Value.Float f
  | Abdl.Lexer.STRING str -> Abdm.Value.Str str
  | Abdl.Lexer.IDENT name when upper name = "NULL" -> Abdm.Value.Null
  | Abdl.Lexer.IDENT name -> Abdm.Value.Str name
  | tok -> fail "expected literal, got %s" (Abdl.Lexer.token_to_string tok)

(* ident [, ident]* — stops before a keyword terminator like IN/TO/FROM. *)
let ident_list s =
  let rec more acc =
    match peek s with
    | Abdl.Lexer.COMMA ->
      advance s;
      more (ident s :: acc)
    | _ -> List.rev acc
  in
  more [ ident s ]

let using_clause s =
  expect_kw s "USING";
  let items = ident_list s in
  expect_kw s "IN";
  let record = ident s in
  items, record

let parse_find s =
  match next s with
  | Abdl.Lexer.IDENT name ->
    begin
      match upper name with
      | "ANY" ->
        let record = ident s in
        let items, in_record = using_clause s in
        if not (String.equal record in_record) then
          fail "FIND ANY: USING ... IN %s must name %s" in_record record;
        Ast.Find_any { record; items }
      | "CURRENT" ->
        let record = ident s in
        expect_kw s "WITHIN";
        let set = ident s in
        Ast.Find_current { record; set }
      | "DUPLICATE" ->
        expect_kw s "WITHIN";
        let set = ident s in
        let items, record = using_clause s in
        Ast.Find_duplicate { set; record; items }
      | "FIRST" | "LAST" | "NEXT" | "PRIOR" ->
        let pos =
          match upper name with
          | "FIRST" -> Ast.First
          | "LAST" -> Ast.Last
          | "NEXT" -> Ast.Next
          | "PRIOR" -> Ast.Prior
          | _ -> assert false
        in
        let record = ident s in
        expect_kw s "WITHIN";
        let set = ident s in
        Ast.Find_position { pos; record; set }
      | "OWNER" ->
        expect_kw s "WITHIN";
        let set = ident s in
        Ast.Find_owner { set }
      | _ ->
        (* FIND r WITHIN s CURRENT USING items IN r *)
        let record = name in
        expect_kw s "WITHIN";
        let set = ident s in
        expect_kw s "CURRENT";
        let items, in_record = using_clause s in
        if not (String.equal record in_record) then
          fail "FIND ... CURRENT: USING ... IN %s must name %s" in_record record;
        Ast.Find_within_current { record; set; items }
    end
  | tok -> fail "FIND: unexpected %s" (Abdl.Lexer.token_to_string tok)

let parse_get s =
  match peek s with
  | Abdl.Lexer.EOF | Abdl.Lexer.SEMI -> Ast.Get_current
  | _ ->
    let first = ident s in
    match peek s with
    | Abdl.Lexer.EOF | Abdl.Lexer.SEMI -> Ast.Get_record first
    | Abdl.Lexer.COMMA ->
      let rec more acc =
        match peek s with
        | Abdl.Lexer.COMMA ->
          advance s;
          more (ident s :: acc)
        | _ -> List.rev acc
      in
      let items = more [ first ] in
      expect_kw s "IN";
      let record = ident s in
      Ast.Get_items { items; record }
    | tok when kw_is tok "IN" ->
      advance s;
      let record = ident s in
      Ast.Get_items { items = [ first ]; record }
    | tok -> fail "GET: unexpected %s" (Abdl.Lexer.token_to_string tok)

let parse_modify s =
  let first = ident s in
  match peek s with
  | Abdl.Lexer.EOF | Abdl.Lexer.SEMI -> Ast.Modify { record = first; items = [] }
  | Abdl.Lexer.COMMA ->
    let rec more acc =
      match peek s with
      | Abdl.Lexer.COMMA ->
        advance s;
        more (ident s :: acc)
      | _ -> List.rev acc
    in
    let items = more [ first ] in
    expect_kw s "IN";
    let record = ident s in
    Ast.Modify { record; items }
  | tok when kw_is tok "IN" ->
    advance s;
    let record = ident s in
    Ast.Modify { record; items = [ first ] }
  | tok -> fail "MODIFY: unexpected %s" (Abdl.Lexer.token_to_string tok)

let stmt_of_stream s =
  let verb = ident s in
  match upper verb with
  | "MOVE" ->
    let value = literal s in
    expect_kw s "TO";
    let item = ident s in
    expect_kw s "IN";
    let record = ident s in
    Ast.Move { value; item; record }
  | "FIND" -> Ast.Find (parse_find s)
  | "GET" -> Ast.Get (parse_get s)
  | "STORE" -> Ast.Store (ident s)
  | "CONNECT" ->
    let record = ident s in
    expect_kw s "TO";
    Ast.Connect { record; sets = ident_list s }
  | "DISCONNECT" ->
    let record = ident s in
    expect_kw s "FROM";
    Ast.Disconnect { record; sets = ident_list s }
  | "MODIFY" -> parse_modify s
  | "ERASE" ->
    let first = ident s in
    if upper first = "ALL" then Ast.Erase { record = ident s; all = true }
    else Ast.Erase { record = first; all = false }
  | other -> fail "unknown CODASYL-DML statement %S" other

let check_done s =
  match peek s with
  | Abdl.Lexer.EOF | Abdl.Lexer.SEMI -> ()
  | tok -> fail "trailing input: %s" (Abdl.Lexer.token_to_string tok)

let stmt src =
  match Abdl.Lexer.tokens src with
  | toks ->
    let s = { toks } in
    let parsed = stmt_of_stream s in
    check_done s;
    parsed
  | exception Abdl.Lexer.Lex_error msg -> raise (Parse_error msg)

(* Is this line the opening of the §VI.B.4 loop idiom? Both the bare form
   and the COBOL "PERFORM UNTIL EOF = 'YES'" spelling are accepted. *)
let is_perform_open line =
  match Abdl.Lexer.tokens line with
  | Abdl.Lexer.IDENT p :: Abdl.Lexer.IDENT u :: Abdl.Lexer.IDENT e :: _
    when upper p = "PERFORM" && upper u = "UNTIL" && upper e = "EOF" ->
    true
  | _ | (exception Abdl.Lexer.Lex_error _) -> false

let is_perform_close line =
  match Abdl.Lexer.tokens line with
  | [ Abdl.Lexer.IDENT e; Abdl.Lexer.IDENT p; Abdl.Lexer.EOF ]
    when upper e = "END" && upper p = "PERFORM" ->
    true
  | _ | (exception Abdl.Lexer.Lex_error _) -> false

let program src =
  let raw_statements =
    (* strip comments, split lines and ';'-separated statements *)
    String.split_on_char '\n' src
    |> List.concat_map (fun line ->
           let line =
             match Daplex.Str_search.find line "--" with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           String.split_on_char ';' line)
    |> List.filter_map (fun part ->
           let part = String.trim part in
           if String.equal part "" then None else Some part)
  in
  (* fold with a block structure for PERFORM UNTIL EOF ... END PERFORM *)
  let rec build acc lines =
    match lines with
    | [] -> List.rev acc, []
    | line :: rest ->
      if is_perform_close line then List.rev acc, rest
      else if is_perform_open line then begin
        let body, rest' = build [] rest in
        build (Ast.Perform_until_eof body :: acc) rest'
      end
      else build (stmt line :: acc) rest
  in
  let stmts, leftover = build [] raw_statements in
  if leftover <> [] then fail "unmatched END PERFORM";
  (* an unterminated PERFORM block: build consumed everything without a
     closer; detect by rebuilding depth *)
  let rec check_depth depth = function
    | [] -> if depth > 0 then fail "PERFORM UNTIL EOF without END PERFORM"
    | line :: rest ->
      if is_perform_open line then check_depth (depth + 1) rest
      else if is_perform_close line then
        if depth = 0 then fail "unmatched END PERFORM"
        else check_depth (depth - 1) rest
      else check_depth depth rest
  in
  check_depth 0 raw_statements;
  stmts
