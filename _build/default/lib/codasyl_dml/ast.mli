(** Abstract syntax of the CODASYL-DML subset of §II.B.2 / Chapter VI:
    FIND (six variants), GET (three variants), STORE, CONNECT, DISCONNECT,
    MODIFY, ERASE — plus the host-language MOVE that fills the UWA. *)

type position =
  | First
  | Last
  | Next
  | Prior

type find =
  | Find_any of { record : string; items : string list }
      (** FIND ANY r USING i1, ..., in IN r *)
  | Find_current of { record : string; set : string }
      (** FIND CURRENT r WITHIN s *)
  | Find_duplicate of { set : string; record : string; items : string list }
      (** FIND DUPLICATE WITHIN s USING i1, ..., in IN r *)
  | Find_position of { pos : position; record : string; set : string }
      (** FIND FIRST/LAST/NEXT/PRIOR r WITHIN s *)
  | Find_owner of { set : string }  (** FIND OWNER WITHIN s *)
  | Find_within_current of { record : string; set : string; items : string list }
      (** FIND r WITHIN s CURRENT USING i1, ..., in IN r *)

type get =
  | Get_current  (** GET — whole current record of the run-unit *)
  | Get_record of string  (** GET r *)
  | Get_items of { items : string list; record : string }
      (** GET i1, ..., in IN r *)

type stmt =
  | Move of { value : Abdm.Value.t; item : string; record : string }
      (** MOVE v TO i IN r (host-language UWA assignment) *)
  | Find of find
  | Get of get
  | Store of string
  | Connect of { record : string; sets : string list }
  | Disconnect of { record : string; sets : string list }
  | Modify of { record : string; items : string list }
      (** empty [items] = whole record *)
  | Erase of { record : string; all : bool }
  | Perform_until_eof of stmt list
      (** the host-language iteration idiom of §VI.B.4
          (MOVE 'NO' TO EOF ... PERFORM UNTIL EOF = 'YES'): repeat the
          block until a FIND inside it runs off its set *)

val to_string : stmt -> string

val pp : Format.formatter -> stmt -> unit
