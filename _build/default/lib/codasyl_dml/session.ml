type rb = {
  mutable rb_entries : (int * Abdm.Record.t) array;
  mutable rb_cursor : int;
}

type t = {
  kernel : Mapping.Kernel.t;
  flavor : Mapping.Ab_schema.flavor;
  descriptor : Abdm.Descriptor.t;
  cit : Network.Currency.t;
  uwa : Network.Uwa.t;
  buffers : (string, rb) Hashtbl.t;
  mutable log : Abdl.Ast.request list;
}

let create kernel flavor =
  {
    kernel;
    flavor;
    descriptor = Mapping.Ab_schema.descriptor flavor;
    cit = Network.Currency.create ();
    uwa = Network.Uwa.create ();
    buffers = Hashtbl.create 16;
    log = [];
  }

let net_schema t = Mapping.Ab_schema.network_schema t.flavor

let issue t request =
  t.log <- request :: t.log;
  Mapping.Kernel.run t.kernel request

let retrieve_records t query =
  match issue t (Abdl.Ast.retrieve query [ Abdl.Ast.T_all ]) with
  | Abdl.Exec.Rows rows ->
    List.filter_map
      (fun (row : Abdl.Exec.row) ->
        match row.dbkey with
        | Some key ->
          let keywords =
            List.map (fun (attr, v) -> Abdm.Keyword.make attr v) row.values
          in
          Some (key, Abdm.Record.make keywords)
        | None -> None)
      rows
  | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ -> []

let request_log t = List.rev t.log

let clear_log t = t.log <- []

let buffer t set_name = Hashtbl.find_opt t.buffers set_name

let set_buffer t set_name entries =
  let rb = { rb_entries = Array.of_list entries; rb_cursor = -1 } in
  Hashtbl.replace t.buffers set_name rb;
  rb

let drop_buffers t = Hashtbl.reset t.buffers
