exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let upper = String.uppercase_ascii

(* Split on whitespace and commas; strip trailing ';'. *)
let words_of_line line =
  let cleaned = String.map (fun c -> if c = ',' || c = ';' then ' ' else c) line in
  String.split_on_char ' ' cleaned
  |> List.filter (fun w -> not (String.equal w ""))

type builder = {
  mutable db_name : string option;
  mutable non_entities : Types.non_entity list;  (* reversed *)
  mutable entities : Types.entity list;  (* reversed *)
  mutable subtypes : Types.subtype list;  (* reversed *)
  mutable uniqueness : Types.uniqueness list;  (* reversed *)
  mutable overlaps : Types.overlap list;  (* reversed *)
  mutable current : sink;
}

and sink =
  | Outside
  | In_entity of string * Types.function_decl list ref
  | In_subtype of string * string list * Types.function_decl list ref

(* Parse "STRING(25)" / "STRING" / "SET OF x" / "INTEGER" / ident. *)
let rec parse_range_words words =
  match words with
  | [] -> fail "missing function range"
  | w :: rest ->
    match upper w, rest with
    | "SET", of_kw :: more when upper of_kw = "OF" ->
      let range, _set = parse_range_words more in
      range, true
    | "INTEGER", _ -> Types.R_int, false
    | "FLOAT", _ -> Types.R_float, false
    | "BOOLEAN", _ -> Types.R_bool, false
    | _ ->
      (* STRING, STRING(25), or a named type *)
      let name, paren =
        match String.index_opt w '(' with
        | Some i ->
          let close =
            match String.index_opt w ')' with
            | Some j when j > i -> j
            | _ -> fail "malformed parenthesised length in %S" w
          in
          let len_text = String.sub w (i + 1) (close - i - 1) in
          begin
            match int_of_string_opt len_text with
            | Some n -> String.sub w 0 i, Some n
            | None -> fail "malformed length %S" len_text
          end
        | None -> w, None
      in
      if upper name = "STRING" then
        Types.R_string (Option.value paren ~default:0), false
      else begin
        if paren <> None then fail "only STRING takes a length, got %S" w;
        Types.R_named name, false
      end

(* A function declaration line: "advisor : faculty;". *)
let parse_function_line line =
  match String.index_opt line ':' with
  | None -> fail "expected 'name : type' in function declaration: %s" line
  | Some i ->
    let name = String.trim (String.sub line 0 i) in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    if String.equal name "" then fail "missing function name: %s" line;
    let range, set = parse_range_words (words_of_line rest) in
    { Types.fn_name = name; fn_range = range; fn_set = set }

(* "1..5" -> (1, 5) *)
let parse_int_range text =
  match String.index_opt text '.' with
  | Some i
    when i + 1 < String.length text && text.[i + 1] = '.' ->
    let lo = String.sub text 0 i in
    let hi = String.sub text (i + 2) (String.length text - i - 2) in
    begin
      match int_of_string_opt lo, int_of_string_opt hi with
      | Some lo, Some hi -> lo, hi
      | _ -> fail "malformed integer range %S" text
    end
  | _ -> fail "malformed integer range %S" text

let non_entity ?(cls = Types.NE_base) ?(kind = Types.K_int) ?(length = 0)
    ?(values = []) ?range ?(constant = false) name =
  {
    Types.ne_name = name;
    ne_class = cls;
    ne_kind = kind;
    ne_length = length;
    ne_values = values;
    ne_range = range;
    ne_constant = constant;
  }

(* The right-hand side of "TYPE name IS <rhs>" when not an entity. *)
let parse_non_entity b name rhs_words raw_rhs =
  let enum_values text =
    (* "(a, b, c)" possibly spread over the words; reparse from raw text *)
    match String.index_opt text '(', String.rindex_opt text ')' with
    | Some i, Some j when j > i ->
      String.sub text (i + 1) (j - i - 1)
      |> String.split_on_char ','
      |> List.map String.trim
      |> List.filter (fun v -> not (String.equal v ""))
    | _ -> fail "malformed enumeration %S" text
  in
  let longest values =
    List.fold_left (fun acc v -> max acc (String.length v)) 0 values
  in
  match rhs_words with
  | [] -> fail "TYPE %s IS: missing definition" name
  | w :: rest ->
    if String.length w > 0 && w.[0] = '(' then begin
      let values = enum_values raw_rhs in
      non_entity ~kind:Types.K_enum ~values ~length:(longest values) name
    end
    else
      match upper w, rest with
      | "INTEGER", [] -> non_entity ~kind:Types.K_int name
      | "INTEGER", [ range_kw; bounds ] when upper range_kw = "RANGE" ->
        non_entity ~kind:Types.K_int ~range:(parse_int_range bounds) name
      | "FLOAT", [] -> non_entity ~kind:Types.K_float name
      | "BOOLEAN", [] ->
        non_entity ~kind:Types.K_enum ~values:[ "true"; "false" ] ~length:5 name
      | "CONSTANT", [ value ] ->
        let kind =
          if String.contains value '.' then Types.K_float else Types.K_int
        in
        non_entity ~kind ~constant:true ~values:[ value ] name
      | "SUBTYPE", of_kw :: base :: [] when upper of_kw = "OF" ->
        begin
          match
            List.find_opt
              (fun (ne : Types.non_entity) -> String.equal ne.ne_name base)
              b.non_entities
          with
          | Some parent ->
            { parent with ne_name = name; ne_class = Types.NE_subtype }
          | None -> fail "TYPE %s: unknown non-entity base %S" name base
        end
      | "NEW", [ base ] ->
        begin
          match
            List.find_opt
              (fun (ne : Types.non_entity) -> String.equal ne.ne_name base)
              b.non_entities
          with
          | Some parent ->
            { parent with ne_name = name; ne_class = Types.NE_derived }
          | None -> fail "TYPE %s: unknown non-entity base %S" name base
        end
      | _ ->
        (* STRING / STRING(n) *)
        let range, set = parse_range_words rhs_words in
        begin
          match range, set with
          | Types.R_string n, false -> non_entity ~kind:Types.K_string ~length:n name
          | _ -> fail "TYPE %s IS %s: not a non-entity definition" name raw_rhs
        end

let close_current b =
  match b.current with
  | Outside -> ()
  | In_entity (name, fns) ->
    b.entities <-
      { Types.ent_name = name; ent_functions = List.rev !fns } :: b.entities;
    b.current <- Outside
  | In_subtype (name, supers, fns) ->
    b.subtypes <-
      { Types.sub_name = name; sub_supertypes = supers;
        sub_functions = List.rev !fns }
      :: b.subtypes;
    b.current <- Outside

let handle_type_header b line words =
  (* words: TYPE <name> IS <...>; entity iff last word is ENTITY *)
  match words with
  | _ :: name :: is_kw :: rest when upper is_kw = "IS" ->
    let rec split_last acc = function
      | [] -> fail "TYPE %s IS: missing definition" name
      | [ last ] -> List.rev acc, last
      | x :: more -> split_last (x :: acc) more
    in
    if rest = [] then fail "TYPE %s IS: missing definition" name;
    let before_last, last = split_last [] rest in
    if upper last = "ENTITY" then begin
      close_current b;
      if before_last = [] then b.current <- In_entity (name, ref [])
      else b.current <- In_subtype (name, before_last, ref [])
    end
    else begin
      (* non-entity declaration, single line *)
      let is_pos =
        match Str_search.find line " IS " with
        | Some i -> i + 4
        | None -> fail "TYPE %s: malformed declaration" name
      in
      let raw_rhs =
        String.trim (String.sub line is_pos (String.length line - is_pos))
      in
      let raw_rhs =
        (* strip trailing ';' *)
        let n = String.length raw_rhs in
        if n > 0 && raw_rhs.[n - 1] = ';' then String.sub raw_rhs 0 (n - 1)
        else raw_rhs
      in
      let ne = parse_non_entity b name rest raw_rhs in
      b.non_entities <- ne :: b.non_entities
    end
  | _ -> fail "malformed TYPE declaration: %s" line

let handle_unique b words =
  (* UNIQUE f1 f2 ... WITHIN t *)
  let rec split acc = function
    | [] -> fail "UNIQUE constraint: missing WITHIN clause"
    | w :: rest when upper w = "WITHIN" ->
      begin
        match rest with
        | [ tname ] -> List.rev acc, tname
        | _ -> fail "UNIQUE constraint: malformed WITHIN clause"
      end
    | w :: rest -> split (w :: acc) rest
  in
  match words with
  | _ :: rest ->
    let fns, tname = split [] rest in
    if fns = [] then fail "UNIQUE constraint: no functions listed";
    b.uniqueness <-
      { Types.uniq_functions = fns; uniq_within = tname } :: b.uniqueness
  | [] -> assert false

let handle_overlap b words =
  (* OVERLAP a b ... WITH c d ... *)
  let rec split acc = function
    | [] -> fail "OVERLAP constraint: missing WITH clause"
    | w :: rest when upper w = "WITH" -> List.rev acc, rest
    | w :: rest -> split (w :: acc) rest
  in
  match words with
  | _ :: rest ->
    let left, right = split [] rest in
    if left = [] || right = [] then fail "OVERLAP constraint: empty side";
    b.overlaps <- { Types.ov_left = left; ov_right = right } :: b.overlaps
  | [] -> assert false

let handle_line b line =
  let words = words_of_line line in
  match words with
  | [] -> ()
  | first :: rest ->
    match upper first, rest with
    | "DATABASE", name :: _ ->
      if b.db_name <> None then fail "duplicate DATABASE clause";
      b.db_name <- Some name
    | "TYPE", _ -> handle_type_header b line words
    | "END", end_what :: _ when upper end_what = "ENTITY" -> close_current b
    | "UNIQUE", _ -> handle_unique b words
    | "OVERLAP", _ -> handle_overlap b words
    | _ ->
      match b.current with
      | In_entity (_, fns) | In_subtype (_, _, fns) ->
        fns := parse_function_line line :: !fns
      | Outside -> fail "cannot parse Daplex DDL line: %s" line

let schema src =
  let b =
    {
      db_name = None;
      non_entities = [];
      entities = [];
      subtypes = [];
      uniqueness = [];
      overlaps = [];
      current = Outside;
    }
  in
  let handle line =
    let line = String.trim line in
    (* strip "--" comments *)
    let line =
      match Str_search.find line "--" with
      | Some i -> String.trim (String.sub line 0 i)
      | None -> line
    in
    if not (String.equal line "") then handle_line b line
  in
  List.iter handle (String.split_on_char '\n' src);
  close_current b;
  let name =
    match b.db_name with
    | Some n -> n
    | None -> fail "missing DATABASE clause"
  in
  let result =
    Schema.make ~name
      ~non_entities:(List.rev b.non_entities)
      ~entities:(List.rev b.entities)
      ~subtypes:(List.rev b.subtypes)
      ~uniqueness:(List.rev b.uniqueness)
      ~overlaps:(List.rev b.overlaps)
      ()
  in
  match Schema.validate result with
  | Ok () -> result
  | Error msg -> fail "invalid schema: %s" msg
