let ddl =
  {|DATABASE university

TYPE rank_type IS (instructor, assistant, associate, full)

TYPE person IS ENTITY
  name : STRING(25);
  ssn : INTEGER;
END ENTITY

TYPE employee IS person ENTITY
  salary : INTEGER;
  dependents : SET OF STRING(25);
END ENTITY

TYPE support_staff IS employee ENTITY
  hours : INTEGER;
  supervisor : employee;
END ENTITY

TYPE faculty IS employee ENTITY
  rank : rank_type;
  dept : department;
  teaching : SET OF course;
END ENTITY

TYPE student IS person ENTITY
  major : STRING(20);
  advisor : faculty;
END ENTITY

TYPE course IS ENTITY
  title : STRING(30);
  semester : STRING(10);
  credits : INTEGER;
  taught_by : SET OF faculty;
END ENTITY

TYPE department IS ENTITY
  dname : STRING(20);
  building : STRING(20);
  offers : SET OF course;
END ENTITY

UNIQUE title, semester WITHIN course

OVERLAP student WITH support_staff
|}

let schema () = Ddl_parser.schema ddl

type fvalue =
  | Scalar of Abdm.Value.t
  | Scalars of Abdm.Value.t list
  | Ref of string
  | Refs of string list

type row = {
  row_type : string;
  row_key : string;
  row_isa : (string * string) list;
  row_values : (string * fvalue) list;
}

let str s = Scalar (Abdm.Value.Str s)

let int i = Scalar (Abdm.Value.Int i)

let dept key dname building offers =
  {
    row_type = "department";
    row_key = key;
    row_isa = [];
    row_values =
      [ "dname", str dname; "building", str building; "offers", Refs offers ];
  }

let course key title semester credits taught_by =
  {
    row_type = "course";
    row_key = key;
    row_isa = [];
    row_values =
      [
        "title", str title;
        "semester", str semester;
        "credits", int credits;
        "taught_by", Refs taught_by;
      ];
  }

let person key name ssn =
  {
    row_type = "person";
    row_key = key;
    row_isa = [];
    row_values = [ "name", str name; "ssn", int ssn ];
  }

let employee key person_key salary dependents =
  {
    row_type = "employee";
    row_key = key;
    row_isa = [ "person", person_key ];
    row_values =
      [
        "salary", int salary;
        "dependents", Scalars (List.map (fun d -> Abdm.Value.Str d) dependents);
      ];
  }

let faculty key employee_key rank dept_key teaching =
  {
    row_type = "faculty";
    row_key = key;
    row_isa = [ "employee", employee_key ];
    row_values =
      [ "rank", str rank; "dept", Ref dept_key; "teaching", Refs teaching ];
  }

let support_staff key employee_key hours supervisor_key =
  {
    row_type = "support_staff";
    row_key = key;
    row_isa = [ "employee", employee_key ];
    row_values = [ "hours", int hours; "supervisor", Ref supervisor_key ];
  }

let student key person_key major advisor_key =
  {
    row_type = "student";
    row_key = key;
    row_isa = [ "person", person_key ];
    row_values = [ "major", str major; "advisor", Ref advisor_key ];
  }

let rows =
  [
    (* departments *)
    dept "d1" "Computer Science" "Spanagel" [ "c1"; "c2"; "c3"; "c4" ];
    dept "d2" "Mathematics" "Root" [ "c5"; "c6"; "c7" ];
    dept "d3" "Physics" "Bullard" [ "c8"; "c9" ];
    dept "d4" "Operations Research" "Glasgow" [ "c10"; "c11"; "c12" ];
    (* courses *)
    course "c1" "Advanced Database" "Spring" 4 [ "f1" ];
    course "c2" "Operating Systems" "Fall" 4 [ "f1"; "f2" ];
    course "c3" "Compilers" "Winter" 4 [ "f2" ];
    course "c4" "Advanced Database" "Fall" 4 [ "f1" ];
    course "c5" "Calculus" "Fall" 3 [ "f3" ];
    course "c6" "Linear Algebra" "Spring" 3 [ "f3"; "f4" ];
    course "c7" "Real Analysis" "Winter" 4 [ "f4" ];
    course "c8" "Mechanics" "Fall" 4 [ "f5" ];
    course "c9" "Electromagnetism" "Spring" 4 [ "f5" ];
    course "c10" "Queueing Theory" "Fall" 3 [ "f6" ];
    course "c11" "Optimization" "Spring" 4 [ "f6" ];
    course "c12" "Simulation" "Winter" 3 [ "f6" ];
    (* persons: faculty *)
    person "p1" "Hsiao" 111223333;
    person "p2" "Demurjian" 111223334;
    person "p3" "Lum" 111223335;
    person "p4" "Marshall" 111223336;
    person "p5" "Bradley" 111223337;
    person "p6" "Washburn" 111223338;
    (* persons: support staff *)
    person "p7" "Jones" 222334444;
    person "p8" "Smith" 222334445;
    person "p9" "Garcia" 222334446;
    (* persons: students *)
    person "p10" "Coker" 333445555;
    person "p11" "Rodeck" 333445556;
    person "p12" "Emdi" 333445557;
    person "p13" "Wortherly" 333445558;
    person "p14" "Zawis" 333445559;
    person "p15" "Banerjee" 333445560;
    (* employees *)
    employee "e1" "p1" 72000 [ "Ann"; "Ben" ];
    employee "e2" "p2" 54000 [];
    employee "e3" "p3" 68000 [ "Carol" ];
    employee "e4" "p4" 61000 [];
    employee "e5" "p5" 47000 [ "Dan"; "Eve"; "Fay" ];
    employee "e6" "p6" 52000 [];
    employee "e7" "p7" 28000 [];
    employee "e8" "p8" 26000 [ "Gil" ];
    employee "e9" "p9" 31000 [];
    (* faculty *)
    faculty "f1" "e1" "full" "d1" [ "c1"; "c2"; "c4" ];
    faculty "f2" "e2" "assistant" "d1" [ "c2"; "c3" ];
    faculty "f3" "e3" "associate" "d2" [ "c5"; "c6" ];
    faculty "f4" "e4" "full" "d2" [ "c6"; "c7" ];
    faculty "f5" "e5" "associate" "d3" [ "c8"; "c9" ];
    faculty "f6" "e6" "assistant" "d4" [ "c10"; "c11"; "c12" ];
    (* support staff *)
    support_staff "s1" "e7" 40 "e1";
    support_staff "s2" "e8" 40 "e1";
    support_staff "s3" "e9" 20 "e3";
    (* students *)
    student "st1" "p10" "Computer Science" "f1";
    student "st2" "p11" "Computer Science" "f1";
    student "st3" "p12" "Computer Science" "f2";
    student "st4" "p13" "Mathematics" "f3";
    student "st5" "p14" "Physics" "f5";
    student "st6" "p15" "Operations Research" "f6";
  ]

let scaled_rows n =
  (* Replicate the base population enough times to reach ~n entities per
     major type; suffix every key with the replica number so references
     stay within a replica. *)
  let base_students = 6 in
  let replicas = max 1 ((n + base_students - 1) / base_students) in
  let rekey suffix key = key ^ "_" ^ suffix in
  let refit suffix = function
    | Scalar v -> Scalar v
    | Scalars vs -> Scalars vs
    | Ref key -> Ref (rekey suffix key)
    | Refs keys -> Refs (List.map (rekey suffix) keys)
  in
  let clone suffix row =
    {
      row with
      row_key = rekey suffix row.row_key;
      row_isa = List.map (fun (t, k) -> t, rekey suffix k) row.row_isa;
      row_values = List.map (fun (f, v) -> f, refit suffix v) row.row_values;
    }
  in
  List.concat_map
    (fun i ->
      let suffix = string_of_int i in
      List.map (clone suffix) rows)
    (List.init replicas (fun i -> i))
