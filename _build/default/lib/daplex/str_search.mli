(** Substring search helper for the line-oriented DDL/DML parsers. *)

(** [find haystack needle] is the index of the first occurrence of
    [needle], if any. An empty needle is found at 0. *)
val find : string -> string -> int option
