let find haystack needle =
  let n = String.length haystack and m = String.length needle in
  if m = 0 then Some 0
  else
    let rec scan i =
      if i + m > n then None
      else if String.sub haystack i m = needle then Some i
      else scan (i + 1)
    in
    scan 0
