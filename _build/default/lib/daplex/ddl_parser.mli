(** Parser for the Daplex schema DDL (the declarations of Figs. 2.1 / 5.2 /
    5.4). Accepted statements (keywords case-insensitive; [--] comments):
    {v
    DATABASE university

    TYPE rank_type IS (instructor, assistant, associate, full)
    TYPE credit_type IS INTEGER RANGE 1..5
    TYPE short_name IS STRING(20)
    TYPE gpa_type IS FLOAT
    TYPE code_type IS SUBTYPE OF short_name     -- non-entity subtype
    TYPE alias_type IS NEW short_name           -- derived non-entity type

    TYPE person IS ENTITY
      name : STRING(25);
      ssn : INTEGER;
    END ENTITY

    TYPE student IS person ENTITY               -- subtype (ISA person)
      major : STRING(20);
      advisor : faculty;                        -- single-valued function
      courses : SET OF course;                  -- multi-valued function
    END ENTITY

    UNIQUE title, semester WITHIN course
    OVERLAP student WITH employee
    v} *)

exception Parse_error of string

(** [schema src] parses a complete functional schema and validates it with
    {!Schema.validate}. *)
val schema : string -> Schema.t
