let ddl =
  {|DATABASE company

TYPE level_type IS INTEGER RANGE 1..5

TYPE worker IS ENTITY
  wname : STRING(25);
  badge : INTEGER;
END ENTITY

TYPE engineer IS worker ENTITY
  speciality : STRING(20);
  assigned : SET OF project;
END ENTITY

TYPE senior_engineer IS engineer ENTITY
  bonus : INTEGER;
  mentor : engineer;
END ENTITY

TYPE manager IS worker ENTITY
  level : level_type;
  runs : SET OF project;
END ENTITY

TYPE project IS ENTITY
  pname : STRING(30);
  budget : INTEGER;
  staffed_by : SET OF engineer;
  sponsor : client;
END ENTITY

TYPE client IS ENTITY
  cname : STRING(25);
  contacts : SET OF STRING(30);
  partners : SET OF client;
END ENTITY

TYPE office IS ENTITY
  city : STRING(20);
  houses : SET OF worker;
END ENTITY

UNIQUE pname WITHIN project

UNIQUE badge WITHIN worker

OVERLAP engineer WITH manager
|}

let schema () = Ddl_parser.schema ddl
