type scalar_kind =
  | K_int
  | K_float
  | K_string
  | K_bool
  | K_enum

type non_entity_class =
  | NE_base
  | NE_subtype
  | NE_derived

type non_entity = {
  ne_name : string;
  ne_class : non_entity_class;
  ne_kind : scalar_kind;
  ne_length : int;
  ne_values : string list;
  ne_range : (int * int) option;
  ne_constant : bool;
}

type range =
  | R_int
  | R_float
  | R_bool
  | R_string of int
  | R_named of string

type function_decl = {
  fn_name : string;
  fn_range : range;
  fn_set : bool;
}

type entity = {
  ent_name : string;
  ent_functions : function_decl list;
}

type subtype = {
  sub_name : string;
  sub_supertypes : string list;
  sub_functions : function_decl list;
}

type uniqueness = {
  uniq_functions : string list;
  uniq_within : string;
}

type overlap = {
  ov_left : string list;
  ov_right : string list;
}

let scalar_kind_to_string = function
  | K_int -> "INTEGER"
  | K_float -> "FLOAT"
  | K_string -> "STRING"
  | K_bool -> "BOOLEAN"
  | K_enum -> "ENUMERATION"

let range_to_string = function
  | R_int -> "INTEGER"
  | R_float -> "FLOAT"
  | R_bool -> "BOOLEAN"
  | R_string 0 -> "STRING"
  | R_string n -> Printf.sprintf "STRING(%d)" n
  | R_named name -> name

let function_to_string { fn_name; fn_range; fn_set } =
  if fn_set then
    Printf.sprintf "%s : SET OF %s" fn_name (range_to_string fn_range)
  else Printf.sprintf "%s : %s" fn_name (range_to_string fn_range)
