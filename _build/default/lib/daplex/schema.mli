(** A functional database schema ([fun_dbid_node]): named non-entity
    types, entity types, entity subtypes, uniqueness constraints, and
    overlap constraints — plus the function-classification logic that the
    Chapter V transformation algorithms switch on. *)

type t = {
  name : string;
  non_entities : Types.non_entity list;
  entities : Types.entity list;
  subtypes : Types.subtype list;
  uniqueness : Types.uniqueness list;
  overlaps : Types.overlap list;
}

(** An entity type or entity subtype. *)
type type_ref =
  | Entity of Types.entity
  | Subtype of Types.subtype

(** Result of resolving a function's range against the schema. *)
type resolved_range =
  | Rs_scalar of {
      kind : Types.scalar_kind;
      length : int;
      values : string list;  (** enumeration members *)
    }
  | Rs_entity of string  (** an entity type or subtype name *)

(** The paper's four function classes (§V.A). *)
type fn_class =
  | C_scalar
  | C_scalar_multi
  | C_single_valued of string  (** range entity *)
  | C_multi_valued of string  (** range entity *)

val make :
  name:string ->
  ?non_entities:Types.non_entity list ->
  ?entities:Types.entity list ->
  ?subtypes:Types.subtype list ->
  ?uniqueness:Types.uniqueness list ->
  ?overlaps:Types.overlap list ->
  unit -> t

val find_entity : t -> string -> Types.entity option

val find_subtype : t -> string -> Types.subtype option

(** [find_type t name] finds an entity type or subtype by name. *)
val find_type : t -> string -> type_ref option

val find_non_entity : t -> string -> Types.non_entity option

(** [is_entity_name t name] — entity type or subtype? *)
val is_entity_name : t -> string -> bool

val type_name : type_ref -> string

val functions_of : type_ref -> Types.function_decl list

(** [find_function t type_name fn_name] searches the type's own function
    list (not inherited ones — inherited values live in the supertype's
    record after transformation). *)
val find_function : t -> string -> string -> Types.function_decl option

(** [owner_of_function t fn_name] — the (first) entity type or subtype
    declaring a function of that name, as KMS's "traverse the functional
    schema to check the required function" (§VI.B.4). *)
val owner_of_function : t -> string -> (type_ref * Types.function_decl) option

(** [resolve_range t range] classifies what the range denotes. Raises
    [Invalid_argument] if a named range is undeclared. *)
val resolve_range : t -> Types.range -> resolved_range

(** [classify t fn] applies the §V.A switch. *)
val classify : t -> Types.function_decl -> fn_class

(** Immediate supertype names of a subtype. *)
val supertypes_of : t -> string -> string list

(** Transitive supertypes, nearest first, without duplicates. *)
val ancestors : t -> string -> string list

(** Immediate subtypes of an entity type or subtype. *)
val subtypes_of : t -> string -> Types.subtype list

(** A type is terminal when it is not a supertype of any subtype
    ([en_terminal] / [gsn_terminal]). *)
val is_terminal : t -> string -> bool

(** All entity-type and subtype names, entities first, declaration
    order. *)
val all_type_names : t -> string list

(** [unique_functions t type_name] — function names of [type_name] under a
    uniqueness constraint. *)
val unique_functions : t -> string -> string list

(** [overlap_allowed t a b] — may one entity belong to both terminal
    subtypes [a] and [b]? True when some OVERLAP constraint pairs them
    (in either order); subtypes are otherwise disjoint (§V.E). *)
val overlap_allowed : t -> string -> string -> bool

(** [validate t] checks name uniqueness, supertype existence, range
    resolution, and constraint references. *)
val validate : t -> (unit, string) result

(** Renders the schema in the Daplex DDL syntax {!Ddl_parser} accepts
    (round-trips). *)
val to_ddl : t -> string

val pp : Format.formatter -> t -> unit
