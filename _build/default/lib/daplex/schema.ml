type t = {
  name : string;
  non_entities : Types.non_entity list;
  entities : Types.entity list;
  subtypes : Types.subtype list;
  uniqueness : Types.uniqueness list;
  overlaps : Types.overlap list;
}

type type_ref =
  | Entity of Types.entity
  | Subtype of Types.subtype

type resolved_range =
  | Rs_scalar of {
      kind : Types.scalar_kind;
      length : int;
      values : string list;
    }
  | Rs_entity of string

type fn_class =
  | C_scalar
  | C_scalar_multi
  | C_single_valued of string
  | C_multi_valued of string

let make ~name ?(non_entities = []) ?(entities = []) ?(subtypes = [])
    ?(uniqueness = []) ?(overlaps = []) () =
  { name; non_entities; entities; subtypes; uniqueness; overlaps }

let find_entity t name =
  List.find_opt
    (fun (e : Types.entity) -> String.equal e.ent_name name)
    t.entities

let find_subtype t name =
  List.find_opt
    (fun (s : Types.subtype) -> String.equal s.sub_name name)
    t.subtypes

let find_type t name =
  match find_entity t name with
  | Some e -> Some (Entity e)
  | None ->
    match find_subtype t name with
    | Some s -> Some (Subtype s)
    | None -> None

let find_non_entity t name =
  List.find_opt
    (fun (ne : Types.non_entity) -> String.equal ne.ne_name name)
    t.non_entities

let is_entity_name t name = find_type t name <> None

let type_name = function
  | Entity e -> e.Types.ent_name
  | Subtype s -> s.Types.sub_name

let functions_of = function
  | Entity e -> e.Types.ent_functions
  | Subtype s -> s.Types.sub_functions

let find_function t tname fname =
  match find_type t tname with
  | None -> None
  | Some tref ->
    List.find_opt
      (fun (fn : Types.function_decl) -> String.equal fn.fn_name fname)
      (functions_of tref)

let owner_of_function t fname =
  let search tref =
    List.find_map
      (fun (fn : Types.function_decl) ->
        if String.equal fn.fn_name fname then Some (tref, fn) else None)
      (functions_of tref)
  in
  let candidates =
    List.map (fun e -> Entity e) t.entities
    @ List.map (fun s -> Subtype s) t.subtypes
  in
  List.find_map search candidates

let resolve_range t (range : Types.range) =
  match range with
  | Types.R_int -> Rs_scalar { kind = Types.K_int; length = 0; values = [] }
  | Types.R_float -> Rs_scalar { kind = Types.K_float; length = 0; values = [] }
  | Types.R_bool -> Rs_scalar { kind = Types.K_bool; length = 0; values = [] }
  | Types.R_string n ->
    Rs_scalar { kind = Types.K_string; length = n; values = [] }
  | Types.R_named name ->
    if is_entity_name t name then Rs_entity name
    else
      match find_non_entity t name with
      | Some ne ->
        Rs_scalar { kind = ne.ne_kind; length = ne.ne_length; values = ne.ne_values }
      | None ->
        invalid_arg (Printf.sprintf "Schema.resolve_range: unknown type %S" name)

let classify t (fn : Types.function_decl) =
  match resolve_range t fn.fn_range, fn.fn_set with
  | Rs_scalar _, false -> C_scalar
  | Rs_scalar _, true -> C_scalar_multi
  | Rs_entity name, false -> C_single_valued name
  | Rs_entity name, true -> C_multi_valued name

let supertypes_of t name =
  match find_subtype t name with
  | Some s -> s.sub_supertypes
  | None -> []

let ancestors t name =
  let rec walk seen frontier =
    match frontier with
    | [] -> List.rev seen
    | x :: rest ->
      if List.mem x seen then walk seen rest
      else walk (x :: seen) (rest @ supertypes_of t x)
  in
  walk [] (supertypes_of t name)

let subtypes_of t name =
  List.filter
    (fun (s : Types.subtype) -> List.mem name s.sub_supertypes)
    t.subtypes

let is_terminal t name = subtypes_of t name = []

let all_type_names t =
  List.map (fun (e : Types.entity) -> e.ent_name) t.entities
  @ List.map (fun (s : Types.subtype) -> s.sub_name) t.subtypes

let unique_functions t tname =
  List.concat_map
    (fun (u : Types.uniqueness) ->
      if String.equal u.uniq_within tname then u.uniq_functions else [])
    t.uniqueness

let overlap_allowed t a b =
  let pairs (ov : Types.overlap) =
    (List.mem a ov.ov_left && List.mem b ov.ov_right)
    || (List.mem b ov.ov_left && List.mem a ov.ov_right)
  in
  List.exists pairs t.overlaps

let rec find_dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else find_dup rest

let validate t =
  let names =
    all_type_names t
    @ List.map (fun (ne : Types.non_entity) -> ne.ne_name) t.non_entities
  in
  match find_dup names with
  | Some name -> Error (Printf.sprintf "duplicate type name %S" name)
  | None ->
    let check_supertypes (s : Types.subtype) =
      List.find_map
        (fun sup ->
          if is_entity_name t sup then None
          else
            Some
              (Printf.sprintf "subtype %S: unknown supertype %S" s.sub_name sup))
        s.sub_supertypes
    in
    let check_functions tref =
      List.find_map
        (fun (fn : Types.function_decl) ->
          match resolve_range t fn.fn_range with
          | Rs_scalar _ | Rs_entity _ -> None
          | exception Invalid_argument _ ->
            Some
              (Printf.sprintf "type %S: function %S has unknown range %S"
                 (type_name tref) fn.fn_name
                 (Types.range_to_string fn.fn_range)))
        (functions_of tref)
    in
    let check_uniqueness (u : Types.uniqueness) =
      match find_type t u.uniq_within with
      | None ->
        Some (Printf.sprintf "UNIQUE constraint on unknown type %S" u.uniq_within)
      | Some tref ->
        List.find_map
          (fun fname ->
            let declared =
              List.exists
                (fun (fn : Types.function_decl) ->
                  String.equal fn.fn_name fname)
                (functions_of tref)
            in
            if declared then None
            else
              Some
                (Printf.sprintf "UNIQUE constraint: %S not a function of %S"
                   fname u.uniq_within))
          u.uniq_functions
    in
    let check_overlap (ov : Types.overlap) =
      List.find_map
        (fun name ->
          if find_subtype t name <> None then None
          else Some (Printf.sprintf "OVERLAP names unknown subtype %S" name))
        (ov.ov_left @ ov.ov_right)
    in
    let problems =
      List.filter_map check_supertypes t.subtypes
      @ List.filter_map check_functions
          (List.map (fun e -> Entity e) t.entities
          @ List.map (fun s -> Subtype s) t.subtypes)
      @ List.filter_map check_uniqueness t.uniqueness
      @ List.filter_map check_overlap t.overlaps
    in
    match problems with
    | [] -> Ok ()
    | msg :: _ -> Error msg

(* --- DDL rendering ---------------------------------------------------- *)

let non_entity_ddl (ne : Types.non_entity) =
  let body =
    match ne.ne_kind with
    | Types.K_enum ->
      Printf.sprintf "(%s)" (String.concat ", " ne.ne_values)
    | Types.K_int ->
      begin
        match ne.ne_range with
        | Some (lo, hi) -> Printf.sprintf "INTEGER RANGE %d..%d" lo hi
        | None -> "INTEGER"
      end
    | Types.K_float -> "FLOAT"
    | Types.K_bool -> "BOOLEAN"
    | Types.K_string ->
      if ne.ne_length > 0 then Printf.sprintf "STRING(%d)" ne.ne_length
      else "STRING"
  in
  Printf.sprintf "TYPE %s IS %s" ne.ne_name body

let functions_ddl fns =
  List.map
    (fun fn -> Printf.sprintf "  %s;" (Types.function_to_string fn))
    fns

let entity_ddl (e : Types.entity) =
  String.concat "\n"
    ((Printf.sprintf "TYPE %s IS ENTITY" e.ent_name
      :: functions_ddl e.ent_functions)
    @ [ "END ENTITY" ])

let subtype_ddl (s : Types.subtype) =
  String.concat "\n"
    ((Printf.sprintf "TYPE %s IS %s ENTITY" s.sub_name
        (String.concat ", " s.sub_supertypes)
      :: functions_ddl s.sub_functions)
    @ [ "END ENTITY" ])

let uniqueness_ddl (u : Types.uniqueness) =
  Printf.sprintf "UNIQUE %s WITHIN %s"
    (String.concat ", " u.uniq_functions)
    u.uniq_within

let overlap_ddl (ov : Types.overlap) =
  Printf.sprintf "OVERLAP %s WITH %s"
    (String.concat ", " ov.ov_left)
    (String.concat ", " ov.ov_right)

let to_ddl t =
  let parts =
    (Printf.sprintf "DATABASE %s" t.name
     :: List.map non_entity_ddl t.non_entities)
    @ List.map entity_ddl t.entities
    @ List.map subtype_ddl t.subtypes
    @ List.map uniqueness_ddl t.uniqueness
    @ List.map overlap_ddl t.overlaps
  in
  String.concat "\n\n" parts ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_ddl t)
