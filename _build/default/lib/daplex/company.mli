(** A second functional schema fixture exercising the transformation
    corners the University schema does not: a three-level ISA chain
    (worker → engineer → senior_engineer), a {e self-referential}
    many-to-many function (client.partners over client), two independent
    many-to-many pairs, several one-to-many functions, and an overlap
    between engineer and manager. *)

val ddl : string

val schema : unit -> Schema.t
