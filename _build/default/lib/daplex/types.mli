(** The functional data model (Shipman's Daplex): entity types carrying
    functions, entity subtypes in ISA hierarchies with value inheritance,
    and non-entity types (paper §II.A, data structures of §IV.A.2).

    A function maps an entity into scalar values, entities, or sets
    thereof. The four classifications that drive the Chapter V
    transformation are: scalar, scalar multi-valued, single-valued (range
    is an entity), and multi-valued (range is a set of entities). *)

(** Scalar kinds of non-entity types ([ennt_type] of Fig. 4.10). *)
type scalar_kind =
  | K_int
  | K_float
  | K_string
  | K_bool
  | K_enum

(** Whether a named non-entity type is a base type, a subtype of a base
    type, or a derived type ([ent_non_node] / [sub_non_node] /
    [der_non_node]). *)
type non_entity_class =
  | NE_base
  | NE_subtype
  | NE_derived

(** A named non-entity type declaration. *)
type non_entity = {
  ne_name : string;
  ne_class : non_entity_class;
  ne_kind : scalar_kind;
  ne_length : int;  (** maximum value length; 0 when unconstrained *)
  ne_values : string list;  (** enumeration members, empty otherwise *)
  ne_range : (int * int) option;  (** integer RANGE lo..hi constraint *)
  ne_constant : bool;
}

(** What a function returns — before schema resolution a name may denote a
    non-entity type or an entity type; {!Schema} resolves it. *)
type range =
  | R_int
  | R_float
  | R_bool
  | R_string of int  (** STRING(len); 0 when unconstrained *)
  | R_named of string  (** a declared non-entity type or entity (sub)type *)

(** A function declared on an entity type or subtype ([function_node]). *)
type function_decl = {
  fn_name : string;
  fn_range : range;
  fn_set : bool;  (** set-valued: SET OF range *)
}

(** An entity type ([ent_node]). *)
type entity = {
  ent_name : string;
  ent_functions : function_decl list;
}

(** An entity subtype ([gen_sub_node]); may have several supertypes, each
    an entity type or another subtype. *)
type subtype = {
  sub_name : string;
  sub_supertypes : string list;
  sub_functions : function_decl list;
}

(** UNIQUE f1, ..., fn WITHIN t (§V.D). *)
type uniqueness = {
  uniq_functions : string list;
  uniq_within : string;
}

(** OVERLAP a, b WITH c, d (§V.E). *)
type overlap = {
  ov_left : string list;
  ov_right : string list;
}

val scalar_kind_to_string : scalar_kind -> string

val range_to_string : range -> string

val function_to_string : function_decl -> string
