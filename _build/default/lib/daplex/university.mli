(** Shipman's University database — the paper's running example
    (Fig. 2.1), with a sample instance population. The schema exercises
    every construct the Chapter V transformation handles: entity types,
    an ISA hierarchy (person → employee → {support_staff, faculty},
    person → student), scalar functions, a scalar multi-valued function
    (dependents), single-valued functions (supervisor, dept, advisor), a
    one-to-many multi-valued function (offers), a many-to-many pair
    (teaching / taught_by → LINK_1), a uniqueness constraint, and an
    overlap constraint. *)

(** The Daplex DDL text of the schema (parses with {!Ddl_parser.schema}). *)
val ddl : string

(** The parsed and validated schema. *)
val schema : unit -> Schema.t

(** One function value in a sample row. *)
type fvalue =
  | Scalar of Abdm.Value.t
  | Scalars of Abdm.Value.t list  (** scalar multi-valued *)
  | Ref of string  (** entity reference by row key *)
  | Refs of string list  (** multi-valued entity references *)

(** A sample entity instance. [row_key] is unique per type; subtypes name
    their supertype instances through [row_isa] (supertype name → its row
    key). *)
type row = {
  row_type : string;
  row_key : string;
  row_isa : (string * string) list;
  row_values : (string * fvalue) list;
}

(** The sample population: 4 departments, 12 courses, and a person
    hierarchy with faculty, students, and support staff. *)
val rows : row list

(** [scaled_rows n] replicates the population pattern to roughly [n]
    entities per major type, for benchmark workloads. Keys are suffixed
    per replica. *)
val scaled_rows : int -> row list
