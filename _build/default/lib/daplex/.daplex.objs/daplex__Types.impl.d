lib/daplex/types.ml: Printf
