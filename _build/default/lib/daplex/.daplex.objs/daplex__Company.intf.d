lib/daplex/company.mli: Schema
