lib/daplex/schema.mli: Format Types
