lib/daplex/university.mli: Abdm Schema
