lib/daplex/ddl_parser.mli: Schema
