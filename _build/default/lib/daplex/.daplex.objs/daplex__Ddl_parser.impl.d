lib/daplex/ddl_parser.ml: List Option Printf Schema Str_search String Types
