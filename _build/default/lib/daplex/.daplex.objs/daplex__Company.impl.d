lib/daplex/company.ml: Ddl_parser
