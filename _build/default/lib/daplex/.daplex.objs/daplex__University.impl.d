lib/daplex/university.ml: Abdm Ddl_parser List
