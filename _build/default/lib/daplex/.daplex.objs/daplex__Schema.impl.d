lib/daplex/schema.ml: Format List Printf String Types
