lib/daplex/str_search.ml: String
