lib/daplex/types.mli:
