lib/daplex/str_search.mli:
