(** The relational data model for the MLDS SQL language interface: named
    relations of typed columns. The relational→ABDM transformation is the
    most direct of the five — one file per relation, one keyword per
    column. *)

type col_type =
  | C_int
  | C_float
  | C_string of int  (** CHAR(n); 0 when unconstrained *)

type column = {
  col_name : string;
  col_type : col_type;
  col_unique : bool;
}

type relation = {
  rel_name : string;
  rel_columns : column list;
}

type schema = {
  name : string;
  relations : relation list;
}

val empty : string -> schema

val find_relation : schema -> string -> relation option

(** [add_relation schema rel] — [Error] on a duplicate name. *)
val add_relation : schema -> relation -> (schema, string) result

val find_column : relation -> string -> column option

(** [descriptor schema] — the AB(relational) kernel descriptor. *)
val descriptor : schema -> Abdm.Descriptor.t

val col_type_to_string : col_type -> string
