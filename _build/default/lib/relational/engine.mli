(** KMS/KC of the relational language interface: SQL statements become
    ABDL requests against the AB(relational) database. The most direct of
    the MLDS translations — one SQL statement maps to one ABDL request
    (plus a duplicate-check retrieve on UNIQUE columns). *)

type t

(** [create kernel name] — a fresh SQL session; tables are created with
    [CREATE TABLE]. With [read_only:true] every statement but SELECT is
    rejected — the mode used when SQL is a window onto a database owned
    by another data model (the MMDS cross-model path). [schema] presets
    the relation catalogue (e.g. one derived from another model's
    schema). *)
val create :
  ?read_only:bool -> ?schema:Types.schema -> Mapping.Kernel.t -> string -> t

val schema : t -> Types.schema

type outcome =
  | Table of {
      header : string list;
      rows : Abdm.Value.t list list;
    }
  | Created_table of string
  | Inserted of int
  | Deleted of int
  | Updated of int

val execute : t -> Sql_ast.stmt -> (outcome, string) result

(** [run t src] parses and executes one statement. *)
val run : t -> string -> (outcome, string) result

val run_program : t -> string -> (Sql_ast.stmt * (outcome, string) result) list

(** ABDL requests issued so far, oldest first. *)
val request_log : t -> Abdl.Ast.request list

val clear_log : t -> unit

val outcome_to_string : outcome -> string
