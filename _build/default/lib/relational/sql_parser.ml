exception Parse_error of string

type stream = { mutable toks : Abdl.Lexer.token list }

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let peek s =
  match s.toks with
  | [] -> Abdl.Lexer.EOF
  | tok :: _ -> tok

let advance s =
  match s.toks with
  | [] -> ()
  | _ :: rest -> s.toks <- rest

let next s =
  let tok = peek s in
  advance s;
  tok

let upper = String.uppercase_ascii

let ident s =
  match next s with
  | Abdl.Lexer.IDENT name -> name
  | tok -> fail "expected identifier, got %s" (Abdl.Lexer.token_to_string tok)

let expect s tok =
  let got = next s in
  if got <> tok then
    fail "expected %s, got %s"
      (Abdl.Lexer.token_to_string tok)
      (Abdl.Lexer.token_to_string got)

let expect_kw s kw =
  match next s with
  | Abdl.Lexer.IDENT name when upper name = kw -> ()
  | tok -> fail "expected %s, got %s" kw (Abdl.Lexer.token_to_string tok)

let kw_is tok kw =
  match tok with
  | Abdl.Lexer.IDENT name -> upper name = kw
  | _ -> false

let literal s =
  match next s with
  | Abdl.Lexer.INT i -> Abdm.Value.Int i
  | Abdl.Lexer.FLOAT f -> Abdm.Value.Float f
  | Abdl.Lexer.STRING str -> Abdm.Value.Str str
  | Abdl.Lexer.IDENT name when upper name = "NULL" -> Abdm.Value.Null
  | Abdl.Lexer.IDENT name ->
    (* a bare identifier on the right of [=] may name the join column of
       the other table ([WHERE dept = dname]); the engine resolves it *)
    Abdm.Value.Str name
  | tok -> fail "expected literal, got %s" (Abdl.Lexer.token_to_string tok)

let comma_separated s parse_one =
  let rec more acc =
    match peek s with
    | Abdl.Lexer.COMMA ->
      advance s;
      more (parse_one s :: acc)
    | _ -> List.rev acc
  in
  more [ parse_one s ]

(* --- WHERE clauses: AND/OR/parens over comparisons, normalised to DNF --- *)

type bexpr =
  | B_pred of Abdm.Predicate.t
  | B_and of bexpr * bexpr
  | B_or of bexpr * bexpr

let rec to_dnf = function
  | B_pred p -> Abdm.Query.conj [ p ]
  | B_or (a, b) -> Abdm.Query.disj [ to_dnf a; to_dnf b ]
  | B_and (a, b) -> Abdm.Query.conj_and (to_dnf a) (to_dnf b)

let comparison s =
  let col = ident s in
  match next s with
  | Abdl.Lexer.OP op_text ->
    begin
      match Abdm.Predicate.op_of_string op_text with
      | Some op -> B_pred (Abdm.Predicate.make col op (literal s))
      | None -> fail "expected comparison operator, got %s" op_text
    end
  | tok -> fail "expected comparison operator, got %s" (Abdl.Lexer.token_to_string tok)

let rec bool_expr s =
  let left = bool_term s in
  if kw_is (peek s) "OR" then begin
    advance s;
    B_or (left, bool_expr s)
  end
  else left

and bool_term s =
  let left = bool_factor s in
  if kw_is (peek s) "AND" then begin
    advance s;
    B_and (left, bool_term s)
  end
  else left

and bool_factor s =
  match peek s with
  | Abdl.Lexer.LPAREN ->
    advance s;
    let e = bool_expr s in
    expect s Abdl.Lexer.RPAREN;
    e
  | _ -> comparison s

let where_clause s =
  if kw_is (peek s) "WHERE" then begin
    advance s;
    to_dnf (bool_expr s)
  end
  else Abdm.Query.always

(* --- statements --------------------------------------------------------- *)

let column_def s =
  let name = ident s in
  let type_name = upper (ident s) in
  let paren_length () =
    match peek s with
    | Abdl.Lexer.LPAREN ->
      advance s;
      let n =
        match next s with
        | Abdl.Lexer.INT n -> n
        | tok -> fail "expected length, got %s" (Abdl.Lexer.token_to_string tok)
      in
      expect s Abdl.Lexer.RPAREN;
      n
    | _ -> 0
  in
  let col_type =
    match type_name with
    | "INT" | "INTEGER" -> Types.C_int
    | "FLOAT" | "REAL" -> Types.C_float
    | "CHAR" | "VARCHAR" | "TEXT" -> Types.C_string (paren_length ())
    | other -> fail "unknown column type %S" other
  in
  let col_unique =
    if kw_is (peek s) "UNIQUE" then begin
      advance s;
      true
    end
    else false
  in
  { Types.col_name = name; col_type; col_unique }

let aggregate_of_name name =
  match upper name with
  | "COUNT" -> Some Abdl.Ast.Count
  | "SUM" -> Some Abdl.Ast.Sum
  | "AVG" -> Some Abdl.Ast.Avg
  | "MIN" -> Some Abdl.Ast.Min
  | "MAX" -> Some Abdl.Ast.Max
  | _ -> None

let select_item s =
  match peek s with
  | Abdl.Lexer.OP "*" ->
    advance s;
    Sql_ast.S_star
  | _ ->
    let name = ident s in
    match aggregate_of_name name, peek s with
    | Some agg, Abdl.Lexer.LPAREN ->
      advance s;
      let col =
        match peek s with
        | Abdl.Lexer.OP "*" ->
          advance s;
          "*"
        | _ -> ident s
      in
      expect s Abdl.Lexer.RPAREN;
      Sql_ast.S_agg (agg, col)
    | _ -> Sql_ast.S_col name

let stmt_of_stream s =
  let verb = ident s in
  match upper verb with
  | "CREATE" ->
    expect_kw s "TABLE";
    let name = ident s in
    expect s Abdl.Lexer.LPAREN;
    let columns = comma_separated s column_def in
    expect s Abdl.Lexer.RPAREN;
    Sql_ast.Create_table { Types.rel_name = name; rel_columns = columns }
  | "SELECT" ->
    let items = comma_separated s select_item in
    expect_kw s "FROM";
    let tables = comma_separated s ident in
    let where = where_clause s in
    let group_by =
      if kw_is (peek s) "GROUP" then begin
        advance s;
        expect_kw s "BY";
        Some (ident s)
      end
      else None
    in
    let order_by =
      if kw_is (peek s) "ORDER" then begin
        advance s;
        expect_kw s "BY";
        Some (ident s)
      end
      else None
    in
    Sql_ast.Select { items; tables; where; group_by; order_by }
  | "INSERT" ->
    expect_kw s "INTO";
    let table = ident s in
    let columns =
      match peek s with
      | Abdl.Lexer.LPAREN ->
        advance s;
        let cols = comma_separated s ident in
        expect s Abdl.Lexer.RPAREN;
        Some cols
      | _ -> None
    in
    expect_kw s "VALUES";
    expect s Abdl.Lexer.LPAREN;
    let values = comma_separated s literal in
    expect s Abdl.Lexer.RPAREN;
    Sql_ast.Insert { table; columns; values }
  | "DELETE" ->
    expect_kw s "FROM";
    let table = ident s in
    Sql_ast.Delete { table; where = where_clause s }
  | "UPDATE" ->
    let table = ident s in
    expect_kw s "SET";
    let assignment s =
      let col = ident s in
      expect s (Abdl.Lexer.OP "=");
      col, literal s
    in
    let sets = comma_separated s assignment in
    Sql_ast.Update { table; sets; where = where_clause s }
  | other -> fail "unknown SQL statement %S" other

let wrap f src =
  match Abdl.Lexer.tokens src with
  | toks -> f { toks }
  | exception Abdl.Lexer.Lex_error msg -> raise (Parse_error msg)

let stmt src =
  wrap
    (fun s ->
      let parsed = stmt_of_stream s in
      begin
        match peek s with
        | Abdl.Lexer.EOF | Abdl.Lexer.SEMI -> ()
        | tok -> fail "trailing input: %s" (Abdl.Lexer.token_to_string tok)
      end;
      parsed)
    src

let program src =
  wrap
    (fun s ->
      let rec loop acc =
        match peek s with
        | Abdl.Lexer.EOF -> List.rev acc
        | Abdl.Lexer.SEMI ->
          advance s;
          loop acc
        | _ -> loop (stmt_of_stream s :: acc)
      in
      loop [])
    src
