type t = {
  kernel : Mapping.Kernel.t;
  read_only : bool;
  mutable schema : Types.schema;
  mutable log : Abdl.Ast.request list;  (* newest first *)
}

type outcome =
  | Table of {
      header : string list;
      rows : Abdm.Value.t list list;
    }
  | Created_table of string
  | Inserted of int
  | Deleted of int
  | Updated of int

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let create ?(read_only = false) ?schema kernel name =
  {
    kernel;
    read_only;
    schema = (match schema with Some s -> s | None -> Types.empty name);
    log = [];
  }

let schema t = t.schema

let issue t request =
  t.log <- request :: t.log;
  Mapping.Kernel.run t.kernel request

let relation t name =
  match Types.find_relation t.schema name with
  | Some rel -> Ok rel
  | None -> err "unknown relation %S" name

let check_column rel name =
  match Types.find_column rel name with
  | Some col -> Ok col
  | None -> err "relation %s has no column %S" rel.Types.rel_name name

let value_matches (col : Types.column) (v : Abdm.Value.t) =
  match col.col_type, v with
  | _, Abdm.Value.Null -> true
  | Types.C_int, Abdm.Value.Int _ -> true
  | Types.C_float, (Abdm.Value.Float _ | Abdm.Value.Int _) -> true
  | Types.C_string _, Abdm.Value.Str _ -> true
  | (Types.C_int | Types.C_float | Types.C_string _), _ -> false

(* restrict the WHERE query to the relation's file *)
let scoped rel where =
  Abdm.Query.conj_and
    (Abdm.Query.conj [ Abdm.Predicate.file_eq rel.Types.rel_name ])
    where

let exec_create_table t rel =
  if rel.Types.rel_columns = [] then err "CREATE TABLE %s: no columns" rel.rel_name
  else
    match Types.add_relation t.schema rel with
    | Ok schema ->
      t.schema <- schema;
      Ok (Created_table rel.Types.rel_name)
    | Error msg -> Error msg

(* --- two-table equi-joins over the kernel's RETRIEVE_COMMON ----------- *)

let split_qualified name =
  match String.index_opt name '.' with
  | Some i ->
    Some
      ( String.sub name 0 i,
        String.sub name (i + 1) (String.length name - i - 1) )
  | None -> None

(* resolve a (possibly table-qualified) column to its side and bare name *)
let resolve_column (t1, rel1) (t2, rel2) name =
  match split_qualified name with
  | Some (tbl, col) ->
    if String.equal tbl t1 then
      match Types.find_column rel1 col with
      | Some _ -> Ok (`Left, col)
      | None -> err "relation %s has no column %S" t1 col
    else if String.equal tbl t2 then
      match Types.find_column rel2 col with
      | Some _ -> Ok (`Right, col)
      | None -> err "relation %s has no column %S" t2 col
    else err "unknown table qualifier %S" tbl
  | None ->
    match Types.find_column rel1 name, Types.find_column rel2 name with
    | Some _, Some _ -> err "column %S is ambiguous; qualify it" name
    | Some _, None -> Ok (`Left, name)
    | None, Some _ -> Ok (`Right, name)
    | None, None -> err "column %S is in neither %s nor %s" name t1 t2

let exec_select_join t items t1 t2 where group_by order_by =
  let* rel1 = relation t t1 in
  let* rel2 = relation t t2 in
  let resolve = resolve_column (t1, rel1) (t2, rel2) in
  let* () =
    if group_by <> None || order_by <> None then
      err "GROUP BY / ORDER BY are not supported with joins"
    else if
      List.exists
        (function Sql_ast.S_agg _ -> true | Sql_ast.S_star | Sql_ast.S_col _ -> false)
        items
    then err "aggregates are not supported with joins"
    else Ok ()
  in
  let* conj =
    match where with
    | [ preds ] -> Ok preds
    | [] | _ :: _ :: _ -> err "joins take a single conjunctive WHERE clause"
  in
  (* split the conjunction into per-side restrictions and the join
     condition: an equality whose "value" names a column of the other
     side *)
  let* left_preds, right_preds, join_pairs =
    List.fold_left
      (fun acc (pred : Abdm.Predicate.t) ->
        let* lp, rp, joins = acc in
        let* side, col = resolve pred.attribute in
        let other_column =
          match pred.op, pred.value with
          | Abdm.Predicate.Eq, Abdm.Value.Str s ->
            begin
              match resolve s with
              | Ok (other_side, other_col) when other_side <> side ->
                Some (other_side, other_col)
              | Ok _ | Error _ -> None
            end
          | _ -> None
        in
        match other_column with
        | Some (_, other_col) ->
          let pair =
            match side with
            | `Left -> col, other_col
            | `Right -> other_col, col
          in
          Ok (lp, rp, pair :: joins)
        | None ->
          let pred = { pred with Abdm.Predicate.attribute = col } in
          begin
            match side with
            | `Left -> Ok (pred :: lp, rp, joins)
            | `Right -> Ok (lp, pred :: rp, joins)
          end)
      (Ok ([], [], []))
      conj
  in
  let* left_col, right_col =
    match join_pairs with
    | [ pair ] -> Ok pair
    | [] -> err "joins need exactly one t1.col = t2.col condition"
    | _ :: _ :: _ -> err "only one join condition is supported"
  in
  (* merged attribute name of a right-side column after the kernel join *)
  let merged_right col =
    if Types.find_column rel1 col <> None then t2 ^ "." ^ col else col
  in
  let* labelled_targets =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Sql_ast.S_star ->
          let left =
            List.map
              (fun (c : Types.column) -> t1 ^ "." ^ c.col_name, c.col_name)
              rel1.Types.rel_columns
          in
          let right =
            List.map
              (fun (c : Types.column) ->
                t2 ^ "." ^ c.col_name, merged_right c.col_name)
              rel2.Types.rel_columns
          in
          Ok (acc @ left @ right)
        | Sql_ast.S_col name ->
          let* side, col = resolve name in
          let merged =
            match side with
            | `Left -> col
            | `Right -> merged_right col
          in
          Ok (acc @ [ name, merged ])
        | Sql_ast.S_agg _ -> err "aggregates are not supported with joins")
      (Ok []) items
  in
  let rc =
    {
      Abdl.Ast.rc_left =
        Abdm.Query.conj (Abdm.Predicate.file_eq t1 :: List.rev left_preds);
      rc_left_attr = left_col;
      rc_right =
        Abdm.Query.conj (Abdm.Predicate.file_eq t2 :: List.rev right_preds);
      rc_right_attr = right_col;
      rc_targets =
        List.map (fun (_, merged) -> Abdl.Ast.T_attr merged) labelled_targets;
    }
  in
  match issue t (Abdl.Ast.Retrieve_common rc) with
  | Abdl.Exec.Rows rows ->
    Ok
      (Table
         {
           header = List.map fst labelled_targets;
           rows = List.map (fun (r : Abdl.Exec.row) -> List.map snd r.values) rows;
         })
  | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
    err "SELECT: kernel returned a non-retrieval result"

let exec_select t items table where group_by order_by =
  let* rel = relation t table in
  (* validate referenced columns *)
  let referenced =
    List.filter_map
      (function
        | Sql_ast.S_col c -> Some c
        | Sql_ast.S_agg (_, "*") -> None
        | Sql_ast.S_agg (_, c) -> Some c
        | Sql_ast.S_star -> None)
      items
    @ Option.to_list group_by
    @ Option.to_list order_by
  in
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        let* _ = check_column rel c in
        Ok ())
      (Ok ()) referenced
  in
  let targets =
    List.concat_map
      (function
        | Sql_ast.S_star ->
          List.map
            (fun (c : Types.column) -> Abdl.Ast.T_attr c.col_name)
            rel.Types.rel_columns
        | Sql_ast.S_col c -> [ Abdl.Ast.T_attr c ]
        | Sql_ast.S_agg (agg, "*") ->
          (* count-all: every record carries the FILE keyword *)
          [ Abdl.Ast.T_agg (agg, Abdm.Keyword.file_attribute) ]
        | Sql_ast.S_agg (agg, c) -> [ Abdl.Ast.T_agg (agg, c) ])
      items
  in
  let has_agg = Abdl.Ast.has_aggregate targets in
  let* by =
    match group_by, order_by with
    | Some g, _ when has_agg -> Ok (Some g)
    | Some _, _ -> err "GROUP BY without an aggregate in the select list"
    | None, Some o when not has_agg -> Ok (Some o)
    | None, Some _ -> err "ORDER BY cannot be combined with aggregates"
    | None, None -> Ok None
  in
  (* a grouped select also reports the grouping column *)
  let targets =
    match group_by with
    | Some g when not (List.exists (fun i -> i = Abdl.Ast.T_attr g) targets) ->
      Abdl.Ast.T_attr g :: targets
    | Some _ | None -> targets
  in
  let request = Abdl.Ast.retrieve ?by (scoped rel where) targets in
  match issue t request with
  | Abdl.Exec.Rows rows ->
    let header =
      match rows with
      | row :: _ -> List.map fst row.Abdl.Exec.values
      | [] ->
        List.map
          (fun target ->
            match target with
            | Abdl.Ast.T_attr c -> c
            | other -> Abdl.Ast.target_to_string other)
          targets
    in
    let header =
      List.map
        (fun h ->
          (* render COUNT(FILE) back as the star form for the user *)
          if String.equal h ("COUNT(" ^ Abdm.Keyword.file_attribute ^ ")") then
            "COUNT(*)"
          else h)
        header
    in
    Ok
      (Table
         {
           header;
           rows = List.map (fun (r : Abdl.Exec.row) -> List.map snd r.values) rows;
         })
  | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
    err "SELECT: kernel returned a non-retrieval result"

let exec_insert t table columns values =
  let* rel = relation t table in
  let* columns =
    match columns with
    | Some cols ->
      let* () =
        List.fold_left
          (fun acc c ->
            let* () = acc in
            let* _ = check_column rel c in
            Ok ())
          (Ok ()) cols
      in
      Ok cols
    | None -> Ok (List.map (fun (c : Types.column) -> c.col_name) rel.rel_columns)
  in
  if List.length columns <> List.length values then
    err "INSERT INTO %s: %d column(s) but %d value(s)" table
      (List.length columns) (List.length values)
  else
    let pairs = List.combine columns values in
    let* () =
      List.fold_left
        (fun acc (c, v) ->
          let* () = acc in
          let* col = check_column rel c in
          if value_matches col v then Ok ()
          else
            err "INSERT INTO %s: column %s expects %s, got %s" table c
              (Types.col_type_to_string col.col_type)
              (Abdm.Value.to_string v))
        (Ok ()) pairs
    in
    (* UNIQUE columns: duplicate-check retrieve first *)
    let unique_preds =
      List.filter_map
        (fun (c, v) ->
          match Types.find_column rel c with
          | Some { col_unique = true; _ } when not (Abdm.Value.is_null v) ->
            Some (Abdm.Predicate.make c Abdm.Predicate.Eq v)
          | _ -> None)
        pairs
    in
    let* () =
      if unique_preds = [] then Ok ()
      else
        let dups = ref false in
        List.iter
          (fun pred ->
            let query =
              Abdm.Query.conj [ Abdm.Predicate.file_eq table; pred ]
            in
            match
              issue t (Abdl.Ast.retrieve query [ Abdl.Ast.T_attr pred.Abdm.Predicate.attribute ])
            with
            | Abdl.Exec.Rows (_ :: _) -> dups := true
            | Abdl.Exec.Rows []
            | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
              ())
          unique_preds;
        if !dups then err "INSERT INTO %s: UNIQUE constraint violated" table
        else Ok ()
    in
    let record =
      Abdm.Record.make
        (Abdm.Keyword.file table
         :: List.map
              (fun (c : Types.column) ->
                let v =
                  match List.assoc_opt c.col_name pairs with
                  | Some v -> v
                  | None -> Abdm.Value.Null
                in
                Abdm.Keyword.make c.col_name v)
              rel.rel_columns)
    in
    begin
      match issue t (Abdl.Ast.Insert record) with
      | Abdl.Exec.Inserted _ -> Ok (Inserted 1)
      | Abdl.Exec.Rows _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
        err "INSERT INTO %s: kernel refused the insert" table
    end

let exec_delete t table where =
  let* rel = relation t table in
  match issue t (Abdl.Ast.Delete (scoped rel where)) with
  | Abdl.Exec.Deleted n -> Ok (Deleted n)
  | Abdl.Exec.Rows _ | Abdl.Exec.Inserted _ | Abdl.Exec.Updated _ ->
    err "DELETE: kernel returned a non-delete result"

let exec_update t table sets where =
  let* rel = relation t table in
  let* modifiers =
    List.fold_left
      (fun acc (c, v) ->
        let* acc = acc in
        let* col = check_column rel c in
        if value_matches col v then
          Ok (Abdm.Modifier.Set_const (c, v) :: acc)
        else
          err "UPDATE %s: column %s expects %s, got %s" table c
            (Types.col_type_to_string col.col_type)
            (Abdm.Value.to_string v))
      (Ok []) sets
  in
  match issue t (Abdl.Ast.Update (scoped rel where, List.rev modifiers)) with
  | Abdl.Exec.Updated n -> Ok (Updated n)
  | Abdl.Exec.Rows _ | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ ->
    err "UPDATE: kernel returned a non-update result"

let execute t = function
  | (Sql_ast.Create_table _ | Sql_ast.Insert _ | Sql_ast.Delete _ | Sql_ast.Update _)
    when t.read_only ->
    Error "this SQL session is read-only (the database belongs to another data model)"
  | Sql_ast.Create_table rel -> exec_create_table t rel
  | Sql_ast.Select { items; tables; where; group_by; order_by } ->
    begin
      match tables with
      | [ table ] -> exec_select t items table where group_by order_by
      | [ t1; t2 ] -> exec_select_join t items t1 t2 where group_by order_by
      | [] -> Error "SELECT: no table named"
      | _ -> Error "SELECT: at most two tables are supported"
    end
  | Sql_ast.Insert { table; columns; values } -> exec_insert t table columns values
  | Sql_ast.Delete { table; where } -> exec_delete t table where
  | Sql_ast.Update { table; sets; where } -> exec_update t table sets where

let run t src =
  match Sql_parser.stmt src with
  | stmt -> execute t stmt
  | exception Sql_parser.Parse_error msg -> Error ("parse error: " ^ msg)

let run_program t src =
  List.map (fun stmt -> stmt, execute t stmt) (Sql_parser.program src)

let request_log t = List.rev t.log

let clear_log t = t.log <- []

let outcome_to_string = function
  | Table { header; rows } ->
    let line row = String.concat " | " (List.map Abdm.Value.to_display row) in
    String.concat "\n" (String.concat " | " header :: List.map line rows)
  | Created_table name -> Printf.sprintf "table %s created" name
  | Inserted n -> Printf.sprintf "%d row(s) inserted" n
  | Deleted n -> Printf.sprintf "%d row(s) deleted" n
  | Updated n -> Printf.sprintf "%d row(s) updated" n
