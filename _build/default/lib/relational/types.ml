type col_type =
  | C_int
  | C_float
  | C_string of int

type column = {
  col_name : string;
  col_type : col_type;
  col_unique : bool;
}

type relation = {
  rel_name : string;
  rel_columns : column list;
}

type schema = {
  name : string;
  relations : relation list;
}

let empty name = { name; relations = [] }

let find_relation schema name =
  List.find_opt (fun r -> String.equal r.rel_name name) schema.relations

let add_relation schema rel =
  match find_relation schema rel.rel_name with
  | Some _ -> Error (Printf.sprintf "relation %S already exists" rel.rel_name)
  | None -> Ok { schema with relations = schema.relations @ [ rel ] }

let find_column rel name =
  List.find_opt (fun c -> String.equal c.col_name name) rel.rel_columns

let descriptor schema =
  let attr_of_column c =
    {
      Abdm.Descriptor.attr_name = c.col_name;
      attr_type =
        (match c.col_type with
         | C_int -> Abdm.Descriptor.T_int
         | C_float -> Abdm.Descriptor.T_float
         | C_string _ -> Abdm.Descriptor.T_string);
      attr_length = (match c.col_type with C_string n -> n | C_int | C_float -> 0);
      attr_unique = c.col_unique;
    }
  in
  List.fold_left
    (fun d r ->
      Abdm.Descriptor.add_file d
        {
          Abdm.Descriptor.file_name = r.rel_name;
          attributes = List.map attr_of_column r.rel_columns;
        })
    (Abdm.Descriptor.make schema.name)
    schema.relations

let col_type_to_string = function
  | C_int -> "INT"
  | C_float -> "FLOAT"
  | C_string 0 -> "CHAR"
  | C_string n -> Printf.sprintf "CHAR(%d)" n
