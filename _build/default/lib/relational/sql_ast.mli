(** Abstract syntax of the SQL subset served by the MLDS relational
    language interface. *)

type select_item =
  | S_star
  | S_col of string
  | S_agg of Abdl.Ast.aggregate * string
      (** COUNT/SUM/AVG/MIN/MAX; a count-all carries the column ["*"] *)

type stmt =
  | Create_table of Types.relation
  | Select of {
      items : select_item list;
      tables : string list;
          (** one table, or two for an equi-join served by the kernel's
              RETRIEVE_COMMON *)
      where : Abdm.Query.t;
      group_by : string option;
      order_by : string option;
    }
  | Insert of {
      table : string;
      columns : string list option;  (** [None] = declaration order *)
      values : Abdm.Value.t list;
    }
  | Delete of {
      table : string;
      where : Abdm.Query.t;
    }
  | Update of {
      table : string;
      sets : (string * Abdm.Value.t) list;
      where : Abdm.Query.t;
    }

val to_string : stmt -> string
