lib/relational/sql_parser.ml: Abdl Abdm List Printf Sql_ast String Types
