lib/relational/sql_ast.ml: Abdl Abdm List Printf String Types
