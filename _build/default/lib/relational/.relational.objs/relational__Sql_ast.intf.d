lib/relational/sql_ast.mli: Abdl Abdm Types
