lib/relational/engine.ml: Abdl Abdm List Mapping Option Printf Result Sql_ast Sql_parser String Types
