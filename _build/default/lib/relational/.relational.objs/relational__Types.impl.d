lib/relational/types.ml: Abdm List Printf String
