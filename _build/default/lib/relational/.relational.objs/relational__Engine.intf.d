lib/relational/engine.mli: Abdl Abdm Mapping Sql_ast Types
