lib/relational/types.mli: Abdm
