type select_item =
  | S_star
  | S_col of string
  | S_agg of Abdl.Ast.aggregate * string

type stmt =
  | Create_table of Types.relation
  | Select of {
      items : select_item list;
      tables : string list;
          (** one table, or two for an equi-join served by the kernel's
              RETRIEVE_COMMON *)
      where : Abdm.Query.t;
      group_by : string option;
      order_by : string option;
    }
  | Insert of {
      table : string;
      columns : string list option;
      values : Abdm.Value.t list;
    }
  | Delete of {
      table : string;
      where : Abdm.Query.t;
    }
  | Update of {
      table : string;
      sets : (string * Abdm.Value.t) list;
      where : Abdm.Query.t;
    }

let select_item_to_string = function
  | S_star -> "*"
  | S_col name -> name
  | S_agg (agg, col) ->
    Printf.sprintf "%s(%s)" (Abdl.Ast.aggregate_to_string agg) col

let where_to_string where =
  if where = Abdm.Query.always then ""
  else " WHERE " ^ Abdm.Query.to_string where

let to_string = function
  | Create_table rel ->
    let col c =
      Printf.sprintf "%s %s%s" c.Types.col_name
        (Types.col_type_to_string c.Types.col_type)
        (if c.Types.col_unique then " UNIQUE" else "")
    in
    Printf.sprintf "CREATE TABLE %s (%s)" rel.Types.rel_name
      (String.concat ", " (List.map col rel.Types.rel_columns))
  | Select { items; tables; where; group_by; order_by } ->
    Printf.sprintf "SELECT %s FROM %s%s%s%s"
      (String.concat ", " (List.map select_item_to_string items))
      (String.concat ", " tables)
      (where_to_string where)
      (match group_by with Some c -> " GROUP BY " ^ c | None -> "")
      (match order_by with Some c -> " ORDER BY " ^ c | None -> "")
  | Insert { table; columns; values } ->
    Printf.sprintf "INSERT INTO %s%s VALUES (%s)" table
      (match columns with
       | Some cols -> Printf.sprintf " (%s)" (String.concat ", " cols)
       | None -> "")
      (String.concat ", " (List.map Abdm.Value.to_string values))
  | Delete { table; where } ->
    Printf.sprintf "DELETE FROM %s%s" table (where_to_string where)
  | Update { table; sets; where } ->
    Printf.sprintf "UPDATE %s SET %s%s" table
      (String.concat ", "
         (List.map
            (fun (c, v) -> Printf.sprintf "%s = %s" c (Abdm.Value.to_string v))
            sets))
      (where_to_string where)
