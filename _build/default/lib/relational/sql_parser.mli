(** Parser for the SQL subset (keywords case-insensitive; [;] separators):
    {v
    CREATE TABLE employee (name CHAR(25) UNIQUE, salary INT, dept CHAR(10))
    SELECT name, salary FROM employee WHERE salary > 50000 AND dept = 'cs'
    SELECT dept, AVG(salary) FROM employee GROUP BY dept
    SELECT COUNT( * ) FROM employee
    INSERT INTO employee (name, salary, dept) VALUES ('Hsiao', 72000, 'cs')
    UPDATE employee SET salary = 80000 WHERE name = 'Hsiao'
    DELETE FROM employee WHERE dept = 'math'
    v} *)

exception Parse_error of string

val stmt : string -> Sql_ast.stmt

val program : string -> Sql_ast.stmt list
