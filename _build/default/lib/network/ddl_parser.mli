(** Parser for the network schema DDL of Fig. 5.1. Accepted statements
    (keywords case-insensitive; trailing [;]/[.] tolerated; [--] comments):
    {v
    SCHEMA NAME IS university
    RECORD NAME IS employee
      ITEM name TYPE IS CHARACTER 25
      ITEM salary TYPE IS FIXED
      ITEM rate TYPE IS FLOAT 8 2
      DUPLICATES ARE NOT ALLOWED FOR name
    SET NAME IS dept
      OWNER IS department
      MEMBER IS faculty
      INSERTION IS MANUAL
      RETENTION IS OPTIONAL
      SET SELECTION IS BY APPLICATION
    v} *)

exception Parse_error of string

(** [schema src] parses a complete schema and validates it with
    {!Schema.validate}. *)
val schema : string -> Schema.t
