type dbkey = int

type entry = {
  cur_dbkey : dbkey;
  cur_record_type : string;
}

type set_entry = {
  cur_owner : dbkey option;
  cur_member : entry option;
}

type t = {
  mutable run_unit : entry option;
  records : (string, entry) Hashtbl.t;
  sets : (string, set_entry) Hashtbl.t;
}

let create () =
  { run_unit = None; records = Hashtbl.create 16; sets = Hashtbl.create 16 }

let set_record_current t entry =
  Hashtbl.replace t.records entry.cur_record_type entry

let set_run_unit t entry =
  t.run_unit <- Some entry;
  set_record_current t entry

let run_unit t = t.run_unit

let record_current t record_type = Hashtbl.find_opt t.records record_type

let set_current t set_name = Hashtbl.find_opt t.sets set_name

let set_set_owner t set_name owner =
  Hashtbl.replace t.sets set_name { cur_owner = Some owner; cur_member = None }

let set_set_member t set_name entry =
  let owner =
    match Hashtbl.find_opt t.sets set_name with
    | Some { cur_owner; _ } -> cur_owner
    | None -> None
  in
  Hashtbl.replace t.sets set_name { cur_owner = owner; cur_member = Some entry }

let forget_key t key =
  begin
    match t.run_unit with
    | Some { cur_dbkey; _ } when cur_dbkey = key -> t.run_unit <- None
    | Some _ | None -> ()
  end;
  let stale_records =
    Hashtbl.fold
      (fun name entry acc -> if entry.cur_dbkey = key then name :: acc else acc)
      t.records []
  in
  List.iter (Hashtbl.remove t.records) stale_records;
  let scrub name se =
    let cur_owner =
      match se.cur_owner with
      | Some k when k = key -> None
      | other -> other
    in
    let cur_member =
      match se.cur_member with
      | Some { cur_dbkey; _ } when cur_dbkey = key -> None
      | other -> other
    in
    Hashtbl.replace t.sets name { cur_owner; cur_member }
  in
  let snapshot = Hashtbl.fold (fun name se acc -> (name, se) :: acc) t.sets [] in
  List.iter (fun (name, se) -> scrub name se) snapshot

let clear t =
  t.run_unit <- None;
  Hashtbl.reset t.records;
  Hashtbl.reset t.sets

let entry_to_string { cur_dbkey; cur_record_type } =
  Printf.sprintf "%s@%d" cur_record_type cur_dbkey

let to_string t =
  let buf = Buffer.create 256 in
  begin
    match t.run_unit with
    | Some entry ->
      Buffer.add_string buf
        (Printf.sprintf "run-unit: %s\n" (entry_to_string entry))
    | None -> Buffer.add_string buf "run-unit: null\n"
  end;
  let records =
    Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) t.records []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, entry) ->
      Buffer.add_string buf
        (Printf.sprintf "record %s: %s\n" name (entry_to_string entry)))
    records;
  let sets =
    Hashtbl.fold (fun name se acc -> (name, se) :: acc) t.sets []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, se) ->
      let owner =
        match se.cur_owner with
        | Some k -> string_of_int k
        | None -> "null"
      in
      let member =
        match se.cur_member with
        | Some entry -> entry_to_string entry
        | None -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf "set %s: owner=%s member=%s\n" name owner member))
    sets;
  Buffer.contents buf
