type attr_type =
  | A_int
  | A_float
  | A_string

type attribute = {
  attr_name : string;
  attr_type : attr_type;
  attr_length : int;
  attr_dec_length : int;
  attr_dup_allowed : bool;
}

type record_type = {
  rec_name : string;
  rec_attributes : attribute list;
}

type insertion =
  | Ins_automatic
  | Ins_manual

type retention =
  | Ret_fixed
  | Ret_optional
  | Ret_mandatory

type selection =
  | Sel_by_value of { item : string; record1 : string }
  | Sel_by_structural of { item : string; record1 : string; record2 : string }
  | Sel_by_application
  | Sel_not_specified

type set_type = {
  set_name : string;
  set_owner : string;
  set_member : string;
  set_insertion : insertion;
  set_retention : retention;
  set_selection : selection;
}

let attr_type_to_string = function
  | A_int -> "FIXED"
  | A_float -> "FLOAT"
  | A_string -> "CHARACTER"

let insertion_to_string = function
  | Ins_automatic -> "AUTOMATIC"
  | Ins_manual -> "MANUAL"

let retention_to_string = function
  | Ret_fixed -> "FIXED"
  | Ret_optional -> "OPTIONAL"
  | Ret_mandatory -> "MANDATORY"

let selection_to_string = function
  | Sel_by_value { item; record1 } ->
    Printf.sprintf "BY VALUE OF %s IN %s" item record1
  | Sel_by_structural { item; record1; record2 } ->
    Printf.sprintf "BY STRUCTURAL %s IN %s = %s" item record1 record2
  | Sel_by_application -> "BY APPLICATION"
  | Sel_not_specified -> "NOT SPECIFIED"

let attribute ?(length = 0) ?(dec_length = 0) ?(dup_allowed = true) name ty =
  {
    attr_name = name;
    attr_type = ty;
    attr_length = length;
    attr_dec_length = dec_length;
    attr_dup_allowed = dup_allowed;
  }

let find_attribute record name =
  List.find_opt
    (fun a -> String.equal a.attr_name name)
    record.rec_attributes
