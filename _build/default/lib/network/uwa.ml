type t = (string, (string * Abdm.Value.t) list ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let slot (t : t) record =
  match Hashtbl.find_opt t record with
  | Some cell -> cell
  | None ->
    let cell = ref [] in
    Hashtbl.replace t record cell;
    cell

let move t ~record ~item value =
  let cell = slot t record in
  if List.mem_assoc item !cell then
    cell :=
      List.map
        (fun (name, v) -> if String.equal name item then name, value else name, v)
        !cell
  else cell := !cell @ [ item, value ]

let get t ~record ~item =
  match Hashtbl.find_opt t record with
  | Some cell -> List.assoc_opt item !cell
  | None -> None

let load t ~record values =
  let cell = slot t record in
  cell := values

let template t ~record =
  match Hashtbl.find_opt t record with
  | Some cell -> !cell
  | None -> []

let clear_record t ~record = Hashtbl.remove t record

let clear t = Hashtbl.reset t
