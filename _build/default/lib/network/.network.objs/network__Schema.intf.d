lib/network/schema.mli: Format Types
