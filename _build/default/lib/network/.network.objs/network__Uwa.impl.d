lib/network/uwa.ml: Abdm Hashtbl List String
