lib/network/types.mli:
