lib/network/currency.ml: Buffer Hashtbl List Printf String
