lib/network/uwa.mli: Abdm
