lib/network/types.ml: List Printf String
