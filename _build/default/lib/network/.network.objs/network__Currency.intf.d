lib/network/currency.mli:
