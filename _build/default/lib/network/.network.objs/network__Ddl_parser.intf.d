lib/network/ddl_parser.mli: Schema
