lib/network/ddl_parser.ml: List Printf Schema String Types
