lib/network/schema.ml: Format List Printf String Types
