(** The Currency Indicator Table (CIT) of §II.B.2 / §VI. A currency
    indicator is either null or the database key of a record; the table
    tracks the current of the run-unit, the current of each record type,
    and the current of each set type (owner occurrence plus current member
    position). FIND statements update it; every other DML statement reads
    it. *)

type dbkey = int

type entry = {
  cur_dbkey : dbkey;
  cur_record_type : string;
}

type set_entry = {
  cur_owner : dbkey option;  (** owner occurrence fixing the set occurrence *)
  cur_member : entry option;  (** current member within that occurrence *)
}

type t

val create : unit -> t

(** [set_run_unit t entry] also makes [entry] current of its record type
    (the CODASYL rule: a FIND updates run-unit, record-type, and set
    currencies together — set currency is updated by the caller that knows
    the set). *)
val set_run_unit : t -> entry -> unit

val run_unit : t -> entry option

val record_current : t -> string -> entry option

val set_record_current : t -> entry -> unit

val set_current : t -> string -> set_entry option

(** [set_set_owner t set owner] fixes the current occurrence of [set] and
    clears its member position. *)
val set_set_owner : t -> string -> dbkey -> unit

(** [set_set_member t set entry] marks [entry] as current member of the
    current occurrence of [set] (owner unchanged). *)
val set_set_member : t -> string -> entry -> unit

(** [forget_key t key] nulls every indicator pointing at [key] — used after
    ERASE so currency never dangles. *)
val forget_key : t -> dbkey -> unit

val clear : t -> unit

(** Rendering for diagnostics and the CLI's SHOW CURRENCY command. *)
val to_string : t -> string
