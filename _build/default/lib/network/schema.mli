(** A network database schema ([net_dbid_node]): a named collection of
    record types and set types, with the structural invariants of §II.B —
    every set has exactly one owner (a record type or SYSTEM) and one
    member record type. *)

type t = {
  name : string;
  records : Types.record_type list;
  sets : Types.set_type list;
}

(** The distinguished owner of system-owned (singular) sets. *)
val system_owner : string

val make :
  name:string -> records:Types.record_type list -> sets:Types.set_type list ->
  t

(** [validate t] checks: unique record/set names, set owners and members
    name declared record types (owner may be SYSTEM), and no set has the
    same record as both owner and member under automatic insertion. *)
val validate : t -> (unit, string) result

val find_record : t -> string -> Types.record_type option

val find_set : t -> string -> Types.set_type option

(** Sets in which [record] participates as member. *)
val sets_with_member : t -> string -> Types.set_type list

(** Sets owned by [record]. *)
val sets_with_owner : t -> string -> Types.set_type list

val record_names : t -> string list

val set_names : t -> string list

(** [set_dup_flag t ~record ~items] clears [attr_dup_allowed] on the named
    items — the DUPLICATES ARE NOT ALLOWED mapping of §V.D. Unknown
    record/items are ignored. *)
val set_dup_flag : t -> record:string -> items:string list -> t

(** Renders the schema in the DDL surface syntax of Fig. 5.1 (also the
    syntax {!Ddl_parser} accepts, so [to_ddl] round-trips). *)
val to_ddl : t -> string

val pp : Format.formatter -> t -> unit
