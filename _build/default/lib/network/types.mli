(** The network (CODASYL-DBTG) data model: record types made of data items,
    and set types — named one-to-many relationships between an owner record
    type and a member record type (paper §II.B). These mirror the
    [nrec_node] / [nattr_node] / [nset_node] / [set_select_node] structures
    of Chapter IV. *)

type attr_type =
  | A_int
  | A_float
  | A_string

(** A data item of a record type ([nattr_node]). *)
type attribute = {
  attr_name : string;
  attr_type : attr_type;
  attr_length : int;  (** maximum value length; 0 when unconstrained *)
  attr_dec_length : int;  (** decimal digits for floating-point items *)
  attr_dup_allowed : bool;
      (** [false] once a DUPLICATES ARE NOT ALLOWED clause names the item *)
}

(** A record type ([nrec_node]). *)
type record_type = {
  rec_name : string;
  rec_attributes : attribute list;
}

type insertion =
  | Ins_automatic
  | Ins_manual

type retention =
  | Ret_fixed
  | Ret_optional
  | Ret_mandatory

(** Set selection mode ([set_select_node]). *)
type selection =
  | Sel_by_value of { item : string; record1 : string }
  | Sel_by_structural of { item : string; record1 : string; record2 : string }
  | Sel_by_application
  | Sel_not_specified

(** A set type ([nset_node]). The owner is a record type name or
    {!Schema.system_owner}. *)
type set_type = {
  set_name : string;
  set_owner : string;
  set_member : string;
  set_insertion : insertion;
  set_retention : retention;
  set_selection : selection;
}

val attr_type_to_string : attr_type -> string

val insertion_to_string : insertion -> string

val retention_to_string : retention -> string

val selection_to_string : selection -> string

(** [attribute ?length ?dec_length ?dup_allowed name ty] builds a data
    item with the usual defaults (no length bound, duplicates allowed). *)
val attribute :
  ?length:int -> ?dec_length:int -> ?dup_allowed:bool -> string -> attr_type ->
  attribute

val find_attribute : record_type -> string -> attribute option
