exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

(* Split a DDL line into words; commas separate, ';' and trailing '.' are
   statement sugar. *)
let words_of_line line =
  let cleaned =
    String.map (fun c -> if c = ',' || c = ';' then ' ' else c) line
  in
  let cleaned =
    let n = String.length cleaned in
    if n > 0 && cleaned.[n - 1] = '.' then String.sub cleaned 0 (n - 1)
    else cleaned
  in
  String.split_on_char ' ' cleaned
  |> List.filter (fun w -> not (String.equal w ""))

let upper = String.uppercase_ascii

(* Partial schema under construction. *)
type builder = {
  mutable db_name : string option;
  mutable records : Types.record_type list;  (* reversed *)
  mutable sets : Types.set_type list;  (* reversed *)
  mutable current : item_sink;
}

and item_sink =
  | In_nothing
  | In_record of string * Types.attribute list ref * string list ref
      (* name, attrs (reversed), no-dup item names *)
  | In_set of partial_set

and partial_set = {
  ps_name : string;
  mutable ps_owner : string option;
  mutable ps_member : string option;
  mutable ps_insertion : Types.insertion;
  mutable ps_retention : Types.retention;
  mutable ps_selection : Types.selection;
}

let flush_current b =
  match b.current with
  | In_nothing -> ()
  | In_record (name, attrs, no_dups) ->
    let finished : Types.record_type =
      { rec_name = name; rec_attributes = List.rev !attrs }
    in
    let finished =
      if !no_dups = [] then finished
      else
        {
          finished with
          rec_attributes =
            List.map
              (fun (a : Types.attribute) ->
                if List.mem a.attr_name !no_dups then
                  { a with attr_dup_allowed = false }
                else a)
              finished.rec_attributes;
        }
    in
    b.records <- finished :: b.records;
    b.current <- In_nothing
  | In_set ps ->
    let owner =
      match ps.ps_owner with
      | Some o -> o
      | None -> fail "set %s: missing OWNER clause" ps.ps_name
    in
    let member =
      match ps.ps_member with
      | Some m -> m
      | None -> fail "set %s: missing MEMBER clause" ps.ps_name
    in
    let finished : Types.set_type =
      {
        set_name = ps.ps_name;
        set_owner = owner;
        set_member = member;
        set_insertion = ps.ps_insertion;
        set_retention = ps.ps_retention;
        set_selection = ps.ps_selection;
      }
    in
    b.sets <- finished :: b.sets;
    b.current <- In_nothing

let parse_item_type words =
  match List.map upper words, words with
  | "CHARACTER" :: _, _ :: rest ->
    let length =
      match rest with
      | len :: _ -> (try int_of_string len with Failure _ -> 0)
      | [] -> 0
    in
    Types.A_string, length, 0
  | ("FIXED" | "INTEGER") :: _, _ -> Types.A_int, 0, 0
  | "FLOAT" :: _, _ :: rest ->
    begin
      match rest with
      | len :: dec :: _ ->
        (try Types.A_float, int_of_string len, int_of_string dec
         with Failure _ -> Types.A_float, 0, 0)
      | [ len ] ->
        (try Types.A_float, int_of_string len, 0
         with Failure _ -> Types.A_float, 0, 0)
      | [] -> Types.A_float, 0, 0
    end
  | _ -> fail "unknown item type: %s" (String.concat " " words)

let parse_selection words =
  match List.map upper words with
  | [ "BY"; "APPLICATION" ] -> Types.Sel_by_application
  | [ "NOT"; "SPECIFIED" ] -> Types.Sel_not_specified
  | "BY" :: "VALUE" :: "OF" :: _ ->
    begin
      match words with
      | _ :: _ :: _ :: item :: in_kw :: record1 :: _ when upper in_kw = "IN" ->
        Types.Sel_by_value { item; record1 }
      | _ -> fail "malformed SET SELECTION BY VALUE clause"
    end
  | "BY" :: "STRUCTURAL" :: _ ->
    begin
      match words with
      | _ :: _ :: item :: in_kw :: record1 :: eq :: record2 :: _
        when upper in_kw = "IN" && String.equal eq "=" ->
        Types.Sel_by_structural { item; record1; record2 }
      | _ -> fail "malformed SET SELECTION BY STRUCTURAL clause"
    end
  | _ -> fail "unknown SET SELECTION mode: %s" (String.concat " " words)

let handle_line b words =
  match List.map upper words, words with
  | [], _ -> ()
  | "SCHEMA" :: "NAME" :: "IS" :: _, _ :: _ :: _ :: name :: _ ->
    if b.db_name <> None then fail "duplicate SCHEMA NAME clause";
    b.db_name <- Some name
  | "RECORD" :: "NAME" :: "IS" :: _, _ :: _ :: _ :: name :: _ ->
    flush_current b;
    b.current <- In_record (name, ref [], ref [])
  | "SET" :: "NAME" :: "IS" :: _, _ :: _ :: _ :: name :: _ ->
    flush_current b;
    b.current <-
      In_set
        {
          ps_name = name;
          ps_owner = None;
          ps_member = None;
          ps_insertion = Types.Ins_manual;
          ps_retention = Types.Ret_optional;
          ps_selection = Types.Sel_not_specified;
        }
  | "ITEM" :: _ :: "TYPE" :: "IS" :: _, _ :: name :: _ :: _ :: type_words ->
    begin
      match b.current with
      | In_record (_, attrs, _) ->
        let a_type, length, dec = parse_item_type type_words in
        attrs :=
          Types.attribute ~length ~dec_length:dec name a_type :: !attrs
      | In_set _ | In_nothing -> fail "ITEM clause outside a RECORD"
    end
  | "DUPLICATES" :: "ARE" :: "NOT" :: "ALLOWED" :: "FOR" :: _,
    _ :: _ :: _ :: _ :: _ :: items ->
    begin
      match b.current with
      | In_record (_, _, no_dups) -> no_dups := !no_dups @ items
      | In_set _ | In_nothing -> fail "DUPLICATES clause outside a RECORD"
    end
  | "OWNER" :: "IS" :: _, _ :: _ :: owner :: _ ->
    begin
      match b.current with
      | In_set ps -> ps.ps_owner <- Some owner
      | In_record _ | In_nothing -> fail "OWNER clause outside a SET"
    end
  | "MEMBER" :: "IS" :: _, _ :: _ :: member :: _ ->
    begin
      match b.current with
      | In_set ps -> ps.ps_member <- Some member
      | In_record _ | In_nothing -> fail "MEMBER clause outside a SET"
    end
  | "INSERTION" :: "IS" :: mode :: _, _ ->
    begin
      match b.current with
      | In_set ps ->
        ps.ps_insertion <-
          (match mode with
           | "AUTOMATIC" -> Types.Ins_automatic
           | "MANUAL" -> Types.Ins_manual
           | _ -> fail "unknown insertion mode %S" mode)
      | In_record _ | In_nothing -> fail "INSERTION clause outside a SET"
    end
  | "RETENTION" :: "IS" :: mode :: _, _ ->
    begin
      match b.current with
      | In_set ps ->
        ps.ps_retention <-
          (match mode with
           | "FIXED" -> Types.Ret_fixed
           | "OPTIONAL" -> Types.Ret_optional
           | "MANDATORY" -> Types.Ret_mandatory
           | _ -> fail "unknown retention mode %S" mode)
      | In_record _ | In_nothing -> fail "RETENTION clause outside a SET"
    end
  | "SET" :: "SELECTION" :: "IS" :: _, _ :: _ :: _ :: mode_words ->
    begin
      match b.current with
      | In_set ps -> ps.ps_selection <- parse_selection mode_words
      | In_record _ | In_nothing -> fail "SET SELECTION clause outside a SET"
    end
  | _ -> fail "cannot parse DDL line: %s" (String.concat " " words)

let schema src =
  let b = { db_name = None; records = []; sets = []; current = In_nothing } in
  let lines = String.split_on_char '\n' src in
  let handle line =
    let line = String.trim line in
    let is_comment =
      String.length line >= 2 && String.sub line 0 2 = "--"
    in
    if not is_comment then handle_line b (words_of_line line)
  in
  List.iter handle lines;
  flush_current b;
  let name =
    match b.db_name with
    | Some n -> n
    | None -> fail "missing SCHEMA NAME clause"
  in
  let result =
    Schema.make ~name ~records:(List.rev b.records) ~sets:(List.rev b.sets)
  in
  match Schema.validate result with
  | Ok () -> result
  | Error msg -> fail "invalid schema: %s" msg
