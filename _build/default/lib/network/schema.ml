type t = {
  name : string;
  records : Types.record_type list;
  sets : Types.set_type list;
}

let system_owner = "SYSTEM"

let make ~name ~records ~sets = { name; records; sets }

let find_record t name =
  List.find_opt
    (fun (r : Types.record_type) -> String.equal r.rec_name name)
    t.records

let find_set t name =
  List.find_opt
    (fun (s : Types.set_type) -> String.equal s.set_name name)
    t.sets

let sets_with_member t record =
  List.filter
    (fun (s : Types.set_type) -> String.equal s.set_member record)
    t.sets

let sets_with_owner t record =
  List.filter
    (fun (s : Types.set_type) -> String.equal s.set_owner record)
    t.sets

let record_names t = List.map (fun (r : Types.record_type) -> r.rec_name) t.records

let set_names t = List.map (fun (s : Types.set_type) -> s.set_name) t.sets

let rec find_dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else find_dup rest

let validate t =
  match find_dup (record_names t) with
  | Some name -> Error (Printf.sprintf "duplicate record type %S" name)
  | None ->
    match find_dup (set_names t) with
    | Some name -> Error (Printf.sprintf "duplicate set type %S" name)
    | None ->
      let check_set (s : Types.set_type) =
        if
          (not (String.equal s.set_owner system_owner))
          && find_record t s.set_owner = None
        then
          Some
            (Printf.sprintf "set %S: unknown owner record %S" s.set_name
               s.set_owner)
        else if find_record t s.set_member = None then
          Some
            (Printf.sprintf "set %S: unknown member record %S" s.set_name
               s.set_member)
        else
          (* a record may be both member and owner of the same set
             (paper §II.B's set characteristics) *)
          None
      in
      let rec first_error = function
        | [] -> Ok ()
        | s :: rest ->
          match check_set s with
          | Some msg -> Error msg
          | None -> first_error rest
      in
      first_error t.sets

let set_dup_flag t ~record ~items =
  let update_attr (a : Types.attribute) =
    if List.mem a.attr_name items then { a with attr_dup_allowed = false }
    else a
  in
  let update_record (r : Types.record_type) =
    if String.equal r.rec_name record then
      { r with rec_attributes = List.map update_attr r.rec_attributes }
    else r
  in
  { t with records = List.map update_record t.records }

let attribute_ddl (a : Types.attribute) =
  let type_part =
    match a.attr_type with
    | Types.A_string ->
      if a.attr_length > 0 then Printf.sprintf "CHARACTER %d" a.attr_length
      else "CHARACTER"
    | Types.A_int -> "FIXED"
    | Types.A_float ->
      if a.attr_dec_length > 0 then
        Printf.sprintf "FLOAT %d %d" a.attr_length a.attr_dec_length
      else "FLOAT"
  in
  Printf.sprintf "  ITEM %s TYPE IS %s" a.attr_name type_part

let record_ddl (r : Types.record_type) =
  let items = List.map attribute_ddl r.rec_attributes in
  let no_dups =
    List.filter_map
      (fun (a : Types.attribute) ->
        if a.attr_dup_allowed then None else Some a.attr_name)
      r.rec_attributes
  in
  let dup_clause =
    match no_dups with
    | [] -> []
    | _ ->
      [ Printf.sprintf "  DUPLICATES ARE NOT ALLOWED FOR %s"
          (String.concat ", " no_dups) ]
  in
  String.concat "\n"
    ((Printf.sprintf "RECORD NAME IS %s" r.rec_name :: items) @ dup_clause)

let set_ddl (s : Types.set_type) =
  String.concat "\n"
    [
      Printf.sprintf "SET NAME IS %s" s.set_name;
      Printf.sprintf "  OWNER IS %s" s.set_owner;
      Printf.sprintf "  MEMBER IS %s" s.set_member;
      Printf.sprintf "  INSERTION IS %s" (Types.insertion_to_string s.set_insertion);
      Printf.sprintf "  RETENTION IS %s" (Types.retention_to_string s.set_retention);
      Printf.sprintf "  SET SELECTION IS %s" (Types.selection_to_string s.set_selection);
    ]

let to_ddl t =
  let parts =
    (Printf.sprintf "SCHEMA NAME IS %s" t.name :: List.map record_ddl t.records)
    @ List.map set_ddl t.sets
  in
  String.concat "\n\n" parts ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_ddl t)
