(** The User Work Area: one value template per record type, filled by the
    host program's MOVE statements before FIND ANY / STORE / MODIFY, and by
    GET when records travel back to the user (paper §VI.B.1). *)

type t

val create : unit -> t

(** [move t ~record ~item value] — the COBOL
    [MOVE value TO item IN record]. *)
val move : t -> record:string -> item:string -> Abdm.Value.t -> unit

val get : t -> record:string -> item:string -> Abdm.Value.t option

(** [load t ~record values] overwrites the record's template wholesale —
    how GET materialises a fetched record for the user. *)
val load : t -> record:string -> (string * Abdm.Value.t) list -> unit

(** [template t ~record] is the current template contents in MOVE order. *)
val template : t -> record:string -> (string * Abdm.Value.t) list

val clear_record : t -> record:string -> unit

val clear : t -> unit
