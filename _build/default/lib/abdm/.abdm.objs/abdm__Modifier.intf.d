lib/abdm/modifier.mli: Format Record Value
