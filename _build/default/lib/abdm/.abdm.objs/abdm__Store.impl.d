lib/abdm/store.ml: Float Hashtbl Int Keyword List Modifier Predicate Printf Query Record Set String Value
