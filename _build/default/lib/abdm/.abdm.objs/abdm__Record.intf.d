lib/abdm/record.mli: Format Keyword Value
