lib/abdm/record.ml: Format Hashtbl Keyword List Printf String Value
