lib/abdm/modifier.ml: Float Format Printf Record Value
