lib/abdm/value.mli: Format
