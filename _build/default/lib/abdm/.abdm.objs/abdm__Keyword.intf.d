lib/abdm/keyword.mli: Format Value
