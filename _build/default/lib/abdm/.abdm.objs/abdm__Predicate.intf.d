lib/abdm/predicate.mli: Format Record Value
