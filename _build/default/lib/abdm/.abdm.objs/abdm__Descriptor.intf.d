lib/abdm/descriptor.mli: Format Record
