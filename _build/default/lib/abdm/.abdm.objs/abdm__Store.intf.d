lib/abdm/store.mli: Modifier Query Record
