lib/abdm/value.ml: Float Format Int Printf String
