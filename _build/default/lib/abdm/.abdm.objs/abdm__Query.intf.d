lib/abdm/query.mli: Format Predicate Record
