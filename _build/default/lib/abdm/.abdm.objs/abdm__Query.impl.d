lib/abdm/query.ml: Format Keyword List Predicate String Value
