lib/abdm/descriptor.ml: Format Keyword List Printf Record String Value
