lib/abdm/keyword.ml: Format Printf String Value
