lib/abdm/predicate.ml: Format Keyword Printf Record Value
