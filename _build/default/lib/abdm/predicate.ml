type op =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type t = {
  attribute : string;
  op : op;
  value : Value.t;
}

let make attribute op value = { attribute; op; value }

let file_eq name = make Keyword.file_attribute Eq (Value.Str name)

let eval op a b =
  (* Null semantics: only equality against Null (or inequality against a
     non-null value) can hold; ordered comparisons involving Null fail. *)
  match op with
  | Eq -> Value.equal a b
  | Neq -> not (Value.equal a b)
  | Lt | Le | Gt | Ge ->
    if Value.is_null a || Value.is_null b then false
    else
      let c = Value.compare a b in
      begin
        match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Eq | Neq -> assert false
      end

let satisfied_by pred record =
  match Record.value_of record pred.attribute with
  | None -> false
  | Some v -> eval pred.op v pred.value

let op_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let op_of_string = function
  | "=" -> Some Eq
  | "<>" | "!=" -> Some Neq
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

let to_string { attribute; op; value } =
  Printf.sprintf "(%s %s %s)" attribute (op_to_string op) (Value.to_string value)

let pp ppf pred = Format.pp_print_string ppf (to_string pred)
