(** ABDM records: at most one keyword per attribute plus an optional
    textual portion (paper Fig. 2.3). *)

type t = {
  keywords : Keyword.t list;
  text : string;
}

(** [make ?text keywords] builds a record. Raises [Invalid_argument] if two
    keywords share an attribute (a record holds at most one keyword per
    attribute). *)
val make : ?text:string -> Keyword.t list -> t

(** [value_of record attr] is the value of [attr]'s keyword, or [None] if
    the record has no keyword for [attr]. *)
val value_of : t -> string -> Value.t option

(** [file record] is the record's file name (value of the [FILE] keyword),
    or [None] if absent. *)
val file : t -> string option

(** [set record attr v] replaces (or adds) the keyword for [attr]. *)
val set : t -> string -> Value.t -> t

(** [remove record attr] drops the keyword for [attr] if present. *)
val remove : t -> string -> t

(** [attributes record] lists attribute names in keyword order. *)
val attributes : t -> string list

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
