(** Attribute-value pairs — the keywords of the attribute-based data model.

    A keyword is formed from the cartesian product of attribute names and
    the domains of their values (paper §II.C.1). The distinguished
    attribute [FILE] names the file a record belongs to. *)

type t = {
  attribute : string;
  value : Value.t;
}

(** The reserved attribute naming a record's file. *)
val file_attribute : string

val make : string -> Value.t -> t

(** [file name] is the keyword [<FILE, name>]. *)
val file : string -> t

val equal : t -> t -> bool

(** Renders in the paper's surface syntax [<attribute, value>]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
