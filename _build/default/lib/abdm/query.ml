type conjunction = Predicate.t list

type t = conjunction list

let always = [ [] ]

let never = []

let conj preds = [ preds ]

let disj qs = List.concat qs

let conj_and q1 q2 =
  List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) q2) q1

let satisfies query record =
  let conj_holds preds =
    List.for_all (fun pred -> Predicate.satisfied_by pred record) preds
  in
  List.exists conj_holds query

(* A conjunction is unsatisfiable when an equality on some attribute
   contradicts another predicate on the same attribute. *)
let contradictory preds =
  List.exists
    (fun (p : Predicate.t) ->
      match p.op with
      | Predicate.Eq ->
        List.exists
          (fun (q : Predicate.t) ->
            String.equal p.attribute q.attribute
            && not (Predicate.eval q.op p.value q.value))
          preds
      | Predicate.Neq | Predicate.Lt | Predicate.Le | Predicate.Gt
      | Predicate.Ge -> false)
    preds

let simplify query =
  let dedup_preds preds =
    List.fold_left
      (fun acc (p : Predicate.t) ->
        if
          List.exists
            (fun (q : Predicate.t) ->
              String.equal p.attribute q.attribute
              && p.op = q.op
              && Value.equal p.value q.value)
            acc
        then acc
        else p :: acc)
      [] preds
    |> List.rev
  in
  let conjunctions =
    List.filter_map
      (fun preds ->
        let preds = dedup_preds preds in
        if contradictory preds then None else Some preds)
      query
  in
  (* drop duplicate conjunctions (same predicate multiset, order kept) *)
  let same_conjunction a b =
    List.length a = List.length b
    && List.for_all
         (fun (p : Predicate.t) ->
           List.exists
             (fun (q : Predicate.t) ->
               String.equal p.attribute q.attribute
               && p.op = q.op
               && Value.equal p.value q.value)
             b)
         a
  in
  List.fold_left
    (fun acc preds ->
      if List.exists (same_conjunction preds) acc then acc else preds :: acc)
    [] conjunctions
  |> List.rev

let file_of_conjunction preds =
  List.find_map
    (fun (pred : Predicate.t) ->
      match pred.op, pred.value with
      | Predicate.Eq, Value.Str name
        when String.equal pred.attribute Keyword.file_attribute ->
        Some name
      | _ -> None)
    preds

let files query =
  let rec collect acc = function
    | [] -> Some (List.rev acc)
    | preds :: rest ->
      match file_of_conjunction preds with
      | Some name -> collect (name :: acc) rest
      | None -> None
  in
  collect [] query

let conjunction_to_string preds =
  match preds with
  | [] -> "(TRUE)"
  | _ -> String.concat " AND " (List.map Predicate.to_string preds)

let to_string query =
  match query with
  | [] -> "(FALSE)"
  | [ preds ] -> conjunction_to_string preds
  | _ ->
    String.concat " OR "
      (List.map (fun preds -> "(" ^ conjunction_to_string preds ^ ")") query)

let pp ppf query = Format.pp_print_string ppf (to_string query)
