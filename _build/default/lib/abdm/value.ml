type t =
  | Int of int
  | Float of float
  | Str of string
  | Null

let class_rank = function
  | Null -> 0
  | Int _ | Float _ -> 1
  | Str _ -> 2

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Null, Null -> 0
  | (Null | Int _ | Float _ | Str _), _ -> Int.compare (class_rank a) (class_rank b)

let equal a b = compare a b = 0

let is_null = function
  | Null -> true
  | Int _ | Float _ | Str _ -> false

let escape_quotes s =
  if not (String.contains s '\'') then s
  else
    String.concat "''" (String.split_on_char '\'' s)

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "'%s'" (escape_quotes s)
  | Null -> "NULL"

let to_display = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Null -> "NULL"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_literal s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then invalid_arg "Value.of_literal: empty literal"
  else if len >= 2 && s.[0] = '\'' && s.[len - 1] = '\'' then
    Str (String.sub s 1 (len - 2))
  else if String.uppercase_ascii s = "NULL" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> invalid_arg (Printf.sprintf "Value.of_literal: %S" s)
