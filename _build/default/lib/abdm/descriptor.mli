(** The attribute-based database descriptor: for each file, the ordered
    attribute template its records follow. The kernel mapping subsystem
    produces one of these when it transforms a UDM database definition into
    a KDM definition (paper §I.B.1); the kernel formatting subsystem reads
    it back when shaping results. *)

type vtype =
  | T_int
  | T_float
  | T_string

type attribute = {
  attr_name : string;
  attr_type : vtype;
  attr_length : int;  (** maximum value length; 0 when unconstrained *)
  attr_unique : bool;  (** DUPLICATES NOT ALLOWED carried into the kernel *)
}

type file = {
  file_name : string;
  attributes : attribute list;
}

type t

val make : string -> t

val db_name : t -> string

(** [add_file t file] registers a file template. Raises [Invalid_argument]
    on a duplicate file name. *)
val add_file : t -> file -> t

val find_file : t -> string -> file option

val file_names : t -> string list

val files : t -> file list

(** [attribute_names t file] is the template's attribute order, or [[]] for
    an unknown file. *)
val attribute_names : t -> string -> string list

(** [validate t record] checks a record against its file's template:
    known file, no unknown attributes, values of the declared types
    ([Null] always allowed). Returns an error message on failure. *)
val validate : t -> Record.t -> (unit, string) result

val vtype_to_string : vtype -> string

val pp : Format.formatter -> t -> unit
