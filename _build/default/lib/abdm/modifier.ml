type arith =
  | Add
  | Sub
  | Mul
  | Div

type t =
  | Set_const of string * Value.t
  | Set_arith of string * arith * Value.t

let arith_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"

let apply_arith op a b =
  let as_float = function
    | Value.Int i -> Some (float_of_int i)
    | Value.Float f -> Some f
    | Value.Str _ | Value.Null -> None
  in
  match as_float a, as_float b with
  | Some x, Some y ->
    let r =
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
    in
    (* Keep integer arithmetic exact when both operands are integers. *)
    begin
      match a, b with
      | Value.Int _, Value.Int _ when Float.is_integer r ->
        Some (Value.Int (int_of_float r))
      | _ -> Some (Value.Float r)
    end
  | _ -> None

let apply modifier record =
  match modifier with
  | Set_const (attr, v) -> Record.set record attr v
  | Set_arith (attr, op, v) ->
    match Record.value_of record attr with
    | None -> record
    | Some current ->
      match apply_arith op current v with
      | None -> record
      | Some v' -> Record.set record attr v'

let attribute = function
  | Set_const (attr, _) | Set_arith (attr, _, _) -> attr

let to_string = function
  | Set_const (attr, v) -> Printf.sprintf "%s = %s" attr (Value.to_string v)
  | Set_arith (attr, op, v) ->
    Printf.sprintf "%s = %s %s %s" attr attr (arith_to_string op)
      (Value.to_string v)

let pp ppf m = Format.pp_print_string ppf (to_string m)
