(** Keyword predicates: [(attribute, relational operator, value)] triples
    used to qualify ABDL requests (paper §II.C.1). *)

type op =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type t = {
  attribute : string;
  op : op;
  value : Value.t;
}

val make : string -> op -> Value.t -> t

(** [file_eq name] is the predicate [(FILE = name)]. *)
val file_eq : string -> t

(** [satisfied_by pred record] holds when the record has a keyword for the
    predicate's attribute and the relation holds between the keyword's
    value and the predicate's value. A record lacking the attribute never
    satisfies the predicate, and [Null] only satisfies [Eq Null] /
    [Neq v]. *)
val satisfied_by : t -> Record.t -> bool

(** [eval op a b] applies the relational operator to two values. *)
val eval : op -> Value.t -> Value.t -> bool

val op_to_string : op -> string

val op_of_string : string -> op option

val to_string : t -> string

val pp : Format.formatter -> t -> unit
