(** UPDATE modifiers: how target records are to be modified
    (paper §II.C.2). The paper's translations only ever set an attribute to
    a constant or to [NULL]; we additionally support the classic ABDL
    arithmetic form [attr = attr op const] used by kernel-level updates. *)

type arith =
  | Add
  | Sub
  | Mul
  | Div

type t =
  | Set_const of string * Value.t
      (** [attr = constant] (a constant of [Null] blanks the attribute). *)
  | Set_arith of string * arith * Value.t
      (** [attr = attr op constant]; applies to numeric attributes. *)

(** [apply modifier record] is the modified record. [Set_const] adds the
    attribute when absent; [Set_arith] on a missing or non-numeric
    attribute leaves the record unchanged. *)
val apply : t -> Record.t -> Record.t

(** [attribute m] is the attribute the modifier writes. *)
val attribute : t -> string

val to_string : t -> string

val pp : Format.formatter -> t -> unit
