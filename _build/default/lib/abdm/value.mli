(** Atomic attribute values of the attribute-based data model (ABDM).

    A keyword is an [attribute, value] pair; this module defines the value
    half. Values are the scalar domains the paper's non-entity types reduce
    to: integers, floating-points, character strings, and the distinguished
    null used by the CONNECT/DISCONNECT translations to blank out a
    function-valued attribute. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Null

(** [compare a b] is a total order on values. Numeric values ([Int],
    [Float]) compare numerically with one another; strings compare
    lexicographically; [Null] is smaller than everything else; values of
    incomparable classes order [Null < numeric < string]. *)
val compare : t -> t -> int

val equal : t -> t -> bool

val is_null : t -> bool

(** [to_string v] renders the value in ABDL surface syntax: integers and
    floats literally, strings in single quotes, null as [NULL]. *)
val to_string : t -> string

(** [to_display v] renders the value without string quoting, for result
    formatting (KFS output). *)
val to_display : t -> string

val pp : Format.formatter -> t -> unit

(** [of_literal s] parses an ABDL literal: a quoted string, an integer, a
    float, or [NULL]. Raises [Invalid_argument] on malformed input. *)
val of_literal : string -> t
