type vtype =
  | T_int
  | T_float
  | T_string

type attribute = {
  attr_name : string;
  attr_type : vtype;
  attr_length : int;
  attr_unique : bool;
}

type file = {
  file_name : string;
  attributes : attribute list;
}

type t = {
  db_name : string;
  files : file list;  (* in registration order *)
}

let make db_name = { db_name; files = [] }

let db_name t = t.db_name

let find_file t name =
  List.find_opt (fun f -> String.equal f.file_name name) t.files

let add_file t file =
  match find_file t file.file_name with
  | Some _ ->
    invalid_arg (Printf.sprintf "Descriptor.add_file: duplicate file %S" file.file_name)
  | None -> { t with files = t.files @ [ file ] }

let file_names t = List.map (fun f -> f.file_name) t.files

let files t = t.files

let attribute_names t name =
  match find_file t name with
  | Some f -> List.map (fun a -> a.attr_name) f.attributes
  | None -> []

let vtype_to_string = function
  | T_int -> "INTEGER"
  | T_float -> "FLOAT"
  | T_string -> "STRING"

let value_matches vtype (v : Value.t) =
  match vtype, v with
  | _, Value.Null -> true
  | T_int, Value.Int _ -> true
  | T_float, (Value.Float _ | Value.Int _) -> true
  | T_string, Value.Str _ -> true
  | (T_int | T_float | T_string), _ -> false

let validate t record =
  match Record.file record with
  | None -> Error "record has no FILE keyword"
  | Some name ->
    match find_file t name with
    | None -> Error (Printf.sprintf "unknown file %S" name)
    | Some file ->
      let check_keyword (kw : Keyword.t) =
        if String.equal kw.attribute Keyword.file_attribute then None
        else
          match
            List.find_opt
              (fun a -> String.equal a.attr_name kw.attribute)
              file.attributes
          with
          | None ->
            Some
              (Printf.sprintf "attribute %S not in template of file %S"
                 kw.attribute name)
          | Some a ->
            if value_matches a.attr_type kw.value then None
            else
              Some
                (Printf.sprintf "attribute %S of file %S expects %s, got %s"
                   kw.attribute name
                   (vtype_to_string a.attr_type)
                   (Value.to_string kw.value))
      in
      let rec first_error = function
        | [] -> Ok ()
        | kw :: rest ->
          match check_keyword kw with
          | Some msg -> Error msg
          | None -> first_error rest
      in
      first_error record.Record.keywords

let pp ppf t =
  Format.fprintf ppf "@[<v>DATABASE %s@," t.db_name;
  let pp_attr a =
    Format.fprintf ppf "    %s : %s%s%s@," a.attr_name
      (vtype_to_string a.attr_type)
      (if a.attr_length > 0 then Printf.sprintf "(%d)" a.attr_length else "")
      (if a.attr_unique then " UNIQUE" else "")
  in
  let pp_file f =
    Format.fprintf ppf "  FILE %s@," f.file_name;
    List.iter pp_attr f.attributes
  in
  List.iter pp_file t.files;
  Format.fprintf ppf "@]"
