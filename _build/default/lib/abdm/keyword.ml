type t = {
  attribute : string;
  value : Value.t;
}

let file_attribute = "FILE"

let make attribute value = { attribute; value }

let file name = { attribute = file_attribute; value = Value.Str name }

let equal a b = String.equal a.attribute b.attribute && Value.equal a.value b.value

let to_string { attribute; value } =
  Printf.sprintf "<%s, %s>" attribute (Value.to_string value)

let pp ppf kw = Format.pp_print_string ppf (to_string kw)
