type t = {
  keywords : Keyword.t list;
  text : string;
}

let check_no_duplicate keywords =
  let seen = Hashtbl.create 16 in
  let check (kw : Keyword.t) =
    if Hashtbl.mem seen kw.attribute then
      invalid_arg
        (Printf.sprintf "Record.make: duplicate attribute %S" kw.attribute)
    else Hashtbl.add seen kw.attribute ()
  in
  List.iter check keywords

let make ?(text = "") keywords =
  check_no_duplicate keywords;
  { keywords; text }

let value_of record attr =
  List.find_map
    (fun (kw : Keyword.t) ->
      if String.equal kw.attribute attr then Some kw.value else None)
    record.keywords

let file record =
  match value_of record Keyword.file_attribute with
  | Some (Value.Str name) -> Some name
  | Some (Value.Int _ | Value.Float _ | Value.Null) | None -> None

let set record attr v =
  let replaced = ref false in
  let replace (kw : Keyword.t) =
    if String.equal kw.attribute attr then begin
      replaced := true;
      Keyword.make attr v
    end
    else kw
  in
  let keywords = List.map replace record.keywords in
  if !replaced then { record with keywords }
  else { record with keywords = keywords @ [ Keyword.make attr v ] }

let remove record attr =
  let keep (kw : Keyword.t) = not (String.equal kw.attribute attr) in
  { record with keywords = List.filter keep record.keywords }

let attributes record =
  List.map (fun (kw : Keyword.t) -> kw.attribute) record.keywords

let equal a b =
  String.equal a.text b.text
  && List.length a.keywords = List.length b.keywords
  && List.for_all2 Keyword.equal a.keywords b.keywords

let to_string record =
  let body = String.concat ", " (List.map Keyword.to_string record.keywords) in
  if String.equal record.text "" then Printf.sprintf "(%s)" body
  else Printf.sprintf "(%s | %s)" body record.text

let pp ppf record = Format.pp_print_string ppf (to_string record)
