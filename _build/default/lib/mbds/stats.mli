(** Running response-time statistics for an MBDS controller. *)

type t

val create : unit -> t

val record : t -> float -> unit

val requests : t -> int

val total_time : t -> float

val last_time : t -> float

(** [mean_time t] is 0. before any request. *)
val mean_time : t -> float

val reset : t -> unit
