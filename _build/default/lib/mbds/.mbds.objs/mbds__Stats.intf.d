lib/mbds/stats.mli:
