lib/mbds/cost.ml: Float List
