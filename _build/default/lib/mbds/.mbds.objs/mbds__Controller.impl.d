lib/mbds/controller.ml: Abdl Abdm Array Cost Int List Printf Stats String
