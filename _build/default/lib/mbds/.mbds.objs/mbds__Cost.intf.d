lib/mbds/cost.mli:
