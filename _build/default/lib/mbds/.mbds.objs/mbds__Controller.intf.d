lib/mbds/controller.mli: Abdl Abdm Cost
