lib/mbds/stats.ml:
