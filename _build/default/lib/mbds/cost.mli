(** Analytic response-time model for the Multi-Backend Database System.

    The paper's MBDS ran each backend on its own minicomputer with a
    dedicated disk, connected to the controller by a broadcast bus
    (Fig. 1.3). We simulate: a request is broadcast to all backends, each
    backend scans its partition in parallel (so the paper's
    {e nearly reciprocal decrease in response time} with more backends),
    and results return serially over the bus to the controller
    (the constant part that keeps the decrease from being exactly
    reciprocal). Parameters are in seconds and are loosely calibrated to
    the era's hardware (≈30 ms average disk access, ≈1 MB/s bus); only the
    response-time {e shape} matters for reproduction. *)

type t = {
  t_overhead : float;  (** fixed controller work per request *)
  t_broadcast : float;  (** putting the request on the bus *)
  t_scan : float;  (** examining one record at a backend (disk read share) *)
  t_io : float;  (** writing one record at a backend *)
  t_result : float;  (** returning one result record over the bus *)
}

val default : t

(** [response_time cost ~backend_work ~results] — [backend_work] lists, per
    backend, [(records_scanned, records_written)]; backends run in
    parallel (max), result return is serial. *)
val response_time : t -> backend_work:(int * int) list -> results:int -> float
