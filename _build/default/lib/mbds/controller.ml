type placement =
  | Round_robin
  | Skewed of float

type t = {
  ctrl_name : string;
  cost : Cost.t;
  placement : placement;
  backends : Abdm.Store.t array;
  mutable next_key : int;
  stats : Stats.t;
}

let create ?(cost = Cost.default) ?(name = "mbds") ?(placement = Round_robin) n =
  if n < 1 then invalid_arg "Controller.create: need at least one backend";
  begin
    match placement with
    | Skewed f when f < 0. || f > 1. ->
      invalid_arg "Controller.create: skew fraction outside [0, 1]"
    | Skewed _ | Round_robin -> ()
  end;
  let backend i = Abdm.Store.create ~name:(Printf.sprintf "%s-be%d" name i) () in
  {
    ctrl_name = name;
    cost;
    placement;
    backends = Array.init n backend;
    next_key = 1;
    stats = Stats.create ();
  }

let num_backends t = Array.length t.backends

let name t = t.ctrl_name

(* deterministic in the key, so get/replace can re-derive the backend *)
let backend_of_key t key =
  let n = Array.length t.backends in
  match t.placement with
  | Round_robin -> t.backends.(key mod n)
  | Skewed fraction ->
    (* a cheap multiplicative hash decides the skewed share *)
    let h = key * 2654435761 land 0x3FFFFFFF in
    if float_of_int (h mod 1000) < fraction *. 1000. then t.backends.(0)
    else t.backends.(key mod n)

(* Run [f] against every backend, returning per-backend results and the
   (scanned, written) work each performed; charge the cost model. *)
let broadcast t ~results_of ~writes_of f =
  Array.iter Abdm.Store.reset_scan_count t.backends;
  let per_backend = Array.to_list (Array.map f t.backends) in
  let backend_work =
    List.map2
      (fun backend result ->
        Abdm.Store.scan_count backend, writes_of result)
      (Array.to_list t.backends) per_backend
  in
  let results = List.fold_left (fun acc r -> acc + results_of r) 0 per_backend in
  let dt = Cost.response_time t.cost ~backend_work ~results in
  Stats.record t.stats dt;
  per_backend

let insert t record =
  let key = t.next_key in
  t.next_key <- key + 1;
  let backend = backend_of_key t key in
  Abdm.Store.insert_keyed backend key record;
  let backend_work =
    Array.to_list
      (Array.map (fun b -> 0, if b == backend then 1 else 0) t.backends)
  in
  Stats.record t.stats (Cost.response_time t.cost ~backend_work ~results:0);
  key

let select t query =
  let per_backend =
    broadcast t
      ~results_of:List.length
      ~writes_of:(fun _ -> 0)
      (fun backend -> Abdm.Store.select backend query)
  in
  List.concat per_backend
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let delete t query =
  let per_backend =
    broadcast t
      ~results_of:(fun _ -> 0)
      ~writes_of:(fun n -> n)
      (fun backend -> Abdm.Store.delete backend query)
  in
  List.fold_left ( + ) 0 per_backend

let update t query modifiers =
  let per_backend =
    broadcast t
      ~results_of:(fun _ -> 0)
      ~writes_of:(fun n -> n)
      (fun backend -> Abdm.Store.update backend query modifiers)
  in
  List.fold_left ( + ) 0 per_backend

let get t key = Abdm.Store.get (backend_of_key t key) key

let replace t key record = Abdm.Store.replace (backend_of_key t key) key record

let count t file =
  Array.fold_left (fun acc b -> acc + Abdm.Store.count b file) 0 t.backends

let size t = Array.fold_left (fun acc b -> acc + Abdm.Store.size b) 0 t.backends

let file_names t =
  Array.fold_left (fun acc b -> Abdm.Store.file_names b @ acc) [] t.backends
  |> List.sort_uniq String.compare

let backend_sizes t = Array.to_list (Array.map Abdm.Store.size t.backends)

let run t (request : Abdl.Ast.request) =
  match request with
  | Abdl.Ast.Insert record -> Abdl.Exec.Inserted (insert t record)
  | Abdl.Ast.Delete query -> Abdl.Exec.Deleted (delete t query)
  | Abdl.Ast.Update (query, modifiers) ->
    Abdl.Exec.Updated (update t query modifiers)
  | Abdl.Ast.Retrieve retrieve ->
    (* Backends select in parallel; the controller shapes (projection,
       sorting, grouping, aggregation) over the merged matches. *)
    let matches = select t retrieve.query in
    Abdl.Exec.Rows (Abdl.Exec.shape_rows retrieve matches)
  | Abdl.Ast.Retrieve_common rc ->
    (* both sides are parallel backend selections; the controller joins *)
    let left = select t rc.rc_left in
    let right = select t rc.rc_right in
    Abdl.Exec.Rows (Abdl.Exec.join_rows rc ~left ~right)

let run_transaction t requests = List.map (run t) requests

let begin_transaction t = Array.iter Abdm.Store.begin_transaction t.backends

let commit t = Array.iter Abdm.Store.commit t.backends

let rollback t = Array.iter Abdm.Store.rollback t.backends

let last_response_time t = Stats.last_time t.stats

let total_time t = Stats.total_time t.stats

let request_count t = Stats.requests t.stats

let mean_response_time t = Stats.mean_time t.stats

let reset_stats t = Stats.reset t.stats
