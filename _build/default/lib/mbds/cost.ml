type t = {
  t_overhead : float;
  t_broadcast : float;
  t_scan : float;
  t_io : float;
  t_result : float;
}

let default =
  {
    t_overhead = 0.010;
    t_broadcast = 0.002;
    t_scan = 0.0005;
    t_io = 0.030;
    t_result = 0.001;
  }

let response_time cost ~backend_work ~results =
  let backend_time (scanned, written) =
    (float_of_int scanned *. cost.t_scan) +. (float_of_int written *. cost.t_io)
  in
  let parallel =
    List.fold_left (fun acc work -> Float.max acc (backend_time work)) 0.
      backend_work
  in
  cost.t_overhead +. cost.t_broadcast +. parallel
  +. (float_of_int results *. cost.t_result)
