exception Parse_error of string

type stream = { mutable toks : Abdl.Lexer.token list }

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let peek s =
  match s.toks with
  | [] -> Abdl.Lexer.EOF
  | tok :: _ -> tok

let advance s =
  match s.toks with
  | [] -> ()
  | _ :: rest -> s.toks <- rest

let next s =
  let tok = peek s in
  advance s;
  tok

let upper = String.uppercase_ascii

let ident s =
  match next s with
  | Abdl.Lexer.IDENT name -> name
  | tok -> fail "expected identifier, got %s" (Abdl.Lexer.token_to_string tok)

let expect s tok =
  let got = next s in
  if got <> tok then
    fail "expected %s, got %s"
      (Abdl.Lexer.token_to_string tok)
      (Abdl.Lexer.token_to_string got)

let literal s =
  match next s with
  | Abdl.Lexer.INT i -> Abdm.Value.Int i
  | Abdl.Lexer.FLOAT f -> Abdm.Value.Float f
  | Abdl.Lexer.STRING str -> Abdm.Value.Str str
  | Abdl.Lexer.IDENT name when upper name = "NULL" -> Abdm.Value.Null
  | Abdl.Lexer.IDENT name -> Abdm.Value.Str name
  | tok -> fail "expected literal, got %s" (Abdl.Lexer.token_to_string tok)

let qualification s =
  let q_field = ident s in
  let q_op =
    match next s with
    | Abdl.Lexer.OP op_text ->
      begin
        match Abdm.Predicate.op_of_string op_text with
        | Some op -> op
        | None -> fail "expected comparison operator, got %s" op_text
      end
    | tok -> fail "expected comparison operator, got %s" (Abdl.Lexer.token_to_string tok)
  in
  let q_value = literal s in
  { Dli_ast.q_field; q_op; q_value }

let ssa s =
  let ssa_segment = ident s in
  match peek s with
  | Abdl.Lexer.LPAREN ->
    advance s;
    let qual = qualification s in
    expect s Abdl.Lexer.RPAREN;
    { Dli_ast.ssa_segment; ssa_qual = Some qual }
  | _ -> { Dli_ast.ssa_segment; ssa_qual = None }

let rec ssa_list s acc =
  match peek s with
  | Abdl.Lexer.IDENT _ -> ssa_list s (ssa s :: acc)
  | _ -> List.rev acc

let field_assignments s =
  expect s Abdl.Lexer.LPAREN;
  let one s =
    let f = ident s in
    expect s (Abdl.Lexer.OP "=");
    f, literal s
  in
  let rec more acc =
    match peek s with
    | Abdl.Lexer.COMMA ->
      advance s;
      more (one s :: acc)
    | _ -> List.rev acc
  in
  let fields = more [ one s ] in
  expect s Abdl.Lexer.RPAREN;
  fields

(* an optional single SSA for GN / GNP *)
let optional_ssa s =
  match peek s with
  | Abdl.Lexer.IDENT _ -> Some (ssa s)
  | _ -> None

let call_of_stream s =
  let verb = ident s in
  match upper verb with
  | "GU" ->
    let ssas = ssa_list s [] in
    if ssas = [] then fail "GU: at least one SSA required";
    Dli_ast.Gu ssas
  | "GN" -> Dli_ast.Gn (optional_ssa s)
  | "GNP" -> Dli_ast.Gnp (optional_ssa s)
  | "ISRT" ->
    (* the FINAL parenthesised group is the field list; everything before
       it is the SSA path ending in the (unqualified) target segment *)
    let toks = Array.of_list s.toks in
    let last_top_level_lparen =
      let depth = ref 0 in
      let found = ref (-1) in
      Array.iteri
        (fun i tok ->
          match tok with
          | Abdl.Lexer.LPAREN ->
            if !depth = 0 then found := i;
            incr depth
          | Abdl.Lexer.RPAREN -> depth := max 0 (!depth - 1)
          | _ -> ())
        toks;
      !found
    in
    if last_top_level_lparen < 0 then fail "ISRT: missing field list";
    let prefix =
      Array.to_list (Array.sub toks 0 last_top_level_lparen)
    in
    let group =
      Array.to_list
        (Array.sub toks last_top_level_lparen
           (Array.length toks - last_top_level_lparen))
    in
    s.toks <- prefix @ [ Abdl.Lexer.EOF ];
    let path_and_target = ssa_list s [] in
    begin
      match peek s with
      | Abdl.Lexer.EOF -> ()
      | tok -> fail "ISRT: unexpected %s in SSA path" (Abdl.Lexer.token_to_string tok)
    end;
    s.toks <- group;
    begin
      match List.rev path_and_target with
      | [] -> fail "ISRT: missing target segment"
      | target :: rev_path ->
        if target.Dli_ast.ssa_qual <> None then
          fail "ISRT: the new segment cannot carry a qualification";
        let fields = field_assignments s in
        Dli_ast.Isrt
          {
            path = List.rev rev_path;
            segment = target.Dli_ast.ssa_segment;
            fields;
          }
    end
  | "REPL" -> Dli_ast.Repl (field_assignments s)
  | "DLET" -> Dli_ast.Dlet
  | other -> fail "unknown DL/I call %S" other

let call src =
  match Abdl.Lexer.tokens src with
  | toks ->
    let s = { toks } in
    let parsed = call_of_stream s in
    begin
      match peek s with
      | Abdl.Lexer.EOF | Abdl.Lexer.SEMI -> ()
      | tok -> fail "trailing input: %s" (Abdl.Lexer.token_to_string tok)
    end;
    parsed
  | exception Abdl.Lexer.Lex_error msg -> raise (Parse_error msg)

let program src =
  let parse_line line =
    let line = String.trim line in
    let line =
      match Daplex.Str_search.find line "--" with
      | Some i -> String.trim (String.sub line 0 i)
      | None -> line
    in
    if String.equal line "" then []
    else
      String.split_on_char ';' line
      |> List.filter_map (fun part ->
             let part = String.trim part in
             if String.equal part "" then None else Some (call part))
  in
  List.concat_map parse_line (String.split_on_char '\n' src)
