(** KMS/KC of the hierarchical language interface: DL/I calls against the
    AB(hierarchical) database. Position (currency) follows IMS rules: GU
    establishes position and parentage; GN advances through the hierarchic
    sequence; GNP stays within the current parent's subtree. *)

type t

val create : Mapping.Kernel.t -> Types.schema -> t

val schema : t -> Types.schema

type outcome =
  | Found of {
      segment : string;
      key : int;
      fields : (string * Abdm.Value.t) list;
    }
  | Not_found  (** the IMS 'GE' status code *)
  | Inserted of int
  | Replaced of int
  | Deleted of int  (** segments removed, subtree included *)

val execute : t -> Dli_ast.call -> (outcome, string) result

val run : t -> string -> (outcome, string) result

val run_program : t -> string -> (Dli_ast.call * (outcome, string) result) list

(** Current position (segment type, key), if any. *)
val position : t -> (string * int) option

(** ABDL requests issued so far, oldest first. *)
val request_log : t -> Abdl.Ast.request list

val clear_log : t -> unit

val outcome_to_string : outcome -> string
