(** Parser for the hierarchical schema DDL (keywords case-insensitive;
    [--] comments):
    {v
    DATABASE medical
    SEGMENT patient (pname CHAR(20), pid INT)
    SEGMENT visit PARENT patient (vdate CHAR(10), cost INT)
    SEGMENT treatment PARENT visit (drug CHAR(12))
    v} *)

exception Parse_error of string

val schema : string -> Types.schema
