exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let upper = String.uppercase_ascii

type stream = { mutable toks : Abdl.Lexer.token list }

let peek s =
  match s.toks with
  | [] -> Abdl.Lexer.EOF
  | tok :: _ -> tok

let advance s =
  match s.toks with
  | [] -> ()
  | _ :: rest -> s.toks <- rest

let next s =
  let tok = peek s in
  advance s;
  tok

let ident s =
  match next s with
  | Abdl.Lexer.IDENT name -> name
  | tok -> fail "expected identifier, got %s" (Abdl.Lexer.token_to_string tok)

let expect s tok =
  let got = next s in
  if got <> tok then
    fail "expected %s, got %s"
      (Abdl.Lexer.token_to_string tok)
      (Abdl.Lexer.token_to_string got)

let kw_is tok kw =
  match tok with
  | Abdl.Lexer.IDENT name -> upper name = kw
  | _ -> false

let field_def s =
  let name = ident s in
  let type_name = upper (ident s) in
  let paren_length () =
    match peek s with
    | Abdl.Lexer.LPAREN ->
      advance s;
      let n =
        match next s with
        | Abdl.Lexer.INT n -> n
        | tok -> fail "expected length, got %s" (Abdl.Lexer.token_to_string tok)
      in
      expect s Abdl.Lexer.RPAREN;
      n
    | Abdl.Lexer.INT n ->
      advance s;
      n
    | _ -> 0
  in
  let field_type =
    match type_name with
    | "INT" | "INTEGER" | "FIXED" -> Types.F_int
    | "FLOAT" | "REAL" -> Types.F_float
    | "CHAR" | "CHARACTER" | "STRING" -> Types.F_string (paren_length ())
    | other -> fail "unknown field type %S" other
  in
  { Types.field_name = name; field_type }

let strip_comments line =
  match Daplex.Str_search.find line "--" with
  | Some i -> String.sub line 0 i
  | None -> line

let schema src =
  let cleaned =
    String.split_on_char '\n' src
    |> List.map strip_comments
    |> String.concat "\n"
  in
  let s =
    match Abdl.Lexer.tokens cleaned with
    | toks -> { toks }
    | exception Abdl.Lexer.Lex_error msg -> fail "%s" msg
  in
  let db_name = ref None in
  let segments = ref [] in
  let rec loop () =
    match peek s with
    | Abdl.Lexer.EOF -> ()
    | tok when kw_is tok "DATABASE" ->
      advance s;
      if !db_name <> None then fail "duplicate DATABASE clause";
      db_name := Some (ident s);
      loop ()
    | tok when kw_is tok "SEGMENT" ->
      advance s;
      let name = ident s in
      let parent =
        if kw_is (peek s) "PARENT" then begin
          advance s;
          Some (ident s)
        end
        else None
      in
      expect s Abdl.Lexer.LPAREN;
      let rec fields acc =
        let f = field_def s in
        match peek s with
        | Abdl.Lexer.COMMA ->
          advance s;
          fields (f :: acc)
        | _ -> List.rev (f :: acc)
      in
      let seg_fields = fields [] in
      expect s Abdl.Lexer.RPAREN;
      segments :=
        { Types.seg_name = name; seg_parent = parent; seg_fields } :: !segments;
      loop ()
    | tok -> fail "unexpected %s in hierarchical DDL" (Abdl.Lexer.token_to_string tok)
  in
  loop ();
  let name =
    match !db_name with
    | Some n -> n
    | None -> fail "missing DATABASE clause"
  in
  let result = { Types.name; segments = List.rev !segments } in
  match Types.validate result with
  | Ok () -> result
  | Error msg -> fail "invalid schema: %s" msg
