(** Line-oriented parser for DL/I calls (keywords case-insensitive;
    [--] comments):
    {v
    GU patient(pid = 5) visit(cost > 100)
    GN
    GN treatment
    GNP visit
    ISRT patient(pid = 5) visit (vdate = '6 JUL', cost = 50)
    ISRT patient (pname = 'Doe', pid = 9)
    REPL (cost = 75)
    DLET
    v} *)

exception Parse_error of string

val call : string -> Dli_ast.call

val program : string -> Dli_ast.call list
