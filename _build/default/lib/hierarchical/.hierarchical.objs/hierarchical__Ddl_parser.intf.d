lib/hierarchical/ddl_parser.mli: Types
