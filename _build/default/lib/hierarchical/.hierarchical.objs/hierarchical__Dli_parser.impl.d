lib/hierarchical/dli_parser.ml: Abdl Abdm Array Daplex Dli_ast List Printf String
