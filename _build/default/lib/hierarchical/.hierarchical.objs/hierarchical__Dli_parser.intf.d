lib/hierarchical/dli_parser.mli: Dli_ast
