lib/hierarchical/engine.ml: Abdl Abdm Dli_ast Dli_parser List Mapping Printf Result String Types
