lib/hierarchical/types.ml: Abdm List Printf String
