lib/hierarchical/dli_ast.mli: Abdm
