lib/hierarchical/types.mli: Abdm
