lib/hierarchical/dli_ast.ml: Abdm List Printf String
