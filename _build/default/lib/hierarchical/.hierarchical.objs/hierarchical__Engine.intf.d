lib/hierarchical/engine.mli: Abdl Abdm Dli_ast Mapping Types
