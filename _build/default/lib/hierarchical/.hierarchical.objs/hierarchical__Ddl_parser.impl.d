lib/hierarchical/ddl_parser.ml: Abdl Daplex List Printf String Types
