type field_type =
  | F_int
  | F_float
  | F_string of int

type field = {
  field_name : string;
  field_type : field_type;
}

type segment = {
  seg_name : string;
  seg_parent : string option;
  seg_fields : field list;
}

type schema = {
  name : string;
  segments : segment list;
}

let find_segment schema name =
  List.find_opt (fun s -> String.equal s.seg_name name) schema.segments

let roots schema = List.filter (fun s -> s.seg_parent = None) schema.segments

let children schema name =
  List.filter (fun s -> s.seg_parent = Some name) schema.segments

let ancestors schema name =
  let rec walk acc name =
    match find_segment schema name with
    | Some { seg_parent = Some parent; _ } -> walk (parent :: acc) parent
    | Some { seg_parent = None; _ } | None -> List.rev acc
  in
  walk [] name

let rec find_dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else find_dup rest

let validate schema =
  let names = List.map (fun s -> s.seg_name) schema.segments in
  match find_dup names with
  | Some name -> Error (Printf.sprintf "duplicate segment %S" name)
  | None ->
    if roots schema = [] then Error "no root segment"
    else
      let rec check_order seen = function
        | [] -> Ok ()
        | s :: rest ->
          match s.seg_parent with
          | Some parent when not (List.mem parent seen) ->
            Error
              (Printf.sprintf "segment %S: parent %S not declared before it"
                 s.seg_name parent)
          | Some _ | None -> check_order (s.seg_name :: seen) rest
      in
      check_order [] schema.segments

let descriptor schema =
  let attr_of_field f =
    {
      Abdm.Descriptor.attr_name = f.field_name;
      attr_type =
        (match f.field_type with
         | F_int -> Abdm.Descriptor.T_int
         | F_float -> Abdm.Descriptor.T_float
         | F_string _ -> Abdm.Descriptor.T_string);
      attr_length = (match f.field_type with F_string n -> n | F_int | F_float -> 0);
      attr_unique = false;
    }
  in
  let int_attr name =
    {
      Abdm.Descriptor.attr_name = name;
      attr_type = Abdm.Descriptor.T_int;
      attr_length = 0;
      attr_unique = false;
    }
  in
  let file_of_segment s =
    let parent_attr =
      match s.seg_parent with
      | Some parent -> [ int_attr parent ]
      | None -> []
    in
    {
      Abdm.Descriptor.file_name = s.seg_name;
      attributes =
        (int_attr s.seg_name :: List.map attr_of_field s.seg_fields)
        @ parent_attr;
    }
  in
  List.fold_left
    (fun d s -> Abdm.Descriptor.add_file d (file_of_segment s))
    (Abdm.Descriptor.make schema.name)
    schema.segments

let field_type_to_string = function
  | F_int -> "INT"
  | F_float -> "FLOAT"
  | F_string 0 -> "CHAR"
  | F_string n -> Printf.sprintf "CHAR(%d)" n
