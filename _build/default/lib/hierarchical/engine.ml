type t = {
  kernel : Mapping.Kernel.t;
  hie_schema : Types.schema;
  descriptor : Abdm.Descriptor.t;
  mutable position : (string * int) option;
  mutable parentage : (string * int) option;
  mutable log : Abdl.Ast.request list;  (* newest first *)
}

type outcome =
  | Found of {
      segment : string;
      key : int;
      fields : (string * Abdm.Value.t) list;
    }
  | Not_found
  | Inserted of int
  | Replaced of int
  | Deleted of int

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let create kernel hie_schema =
  {
    kernel;
    hie_schema;
    descriptor = Types.descriptor hie_schema;
    position = None;
    parentage = None;
    log = [];
  }

let schema t = t.hie_schema

let issue t request =
  t.log <- request :: t.log;
  Mapping.Kernel.run t.kernel request

let retrieve t query =
  match issue t (Abdl.Ast.retrieve query [ Abdl.Ast.T_all ]) with
  | Abdl.Exec.Rows rows ->
    List.filter_map
      (fun (row : Abdl.Exec.row) ->
        match row.dbkey with
        | Some key ->
          Some
            ( key,
              Abdm.Record.make
                (List.map (fun (attr, v) -> Abdm.Keyword.make attr v) row.values) )
        | None -> None)
      rows
  | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ -> []

let int_pred attr key =
  Abdm.Predicate.make attr Abdm.Predicate.Eq (Abdm.Value.Int key)

let segment t name =
  match Types.find_segment t.hie_schema name with
  | Some s -> Ok s
  | None -> err "unknown segment type %S" name

(* The hierarchic sequence: root instances in key order, each followed by
   its subtrees, child segment types in declaration order. *)
let sequence t =
  let rec visit seg_name (key, record) =
    (seg_name, key, record)
    :: List.concat_map
         (fun (child : Types.segment) ->
           retrieve t
             (Abdm.Query.conj
                [ Abdm.Predicate.file_eq child.seg_name; int_pred seg_name key ])
           |> List.concat_map (fun kr -> visit child.seg_name kr))
         (Types.children t.hie_schema seg_name)
  in
  List.concat_map
    (fun (root : Types.segment) ->
      retrieve t (Abdm.Query.conj [ Abdm.Predicate.file_eq root.seg_name ])
      |> List.concat_map (fun kr -> visit root.seg_name kr))
    (Types.roots t.hie_schema)

let qual_satisfied record (q : Dli_ast.qualification) =
  match Abdm.Record.value_of record q.q_field with
  | Some v -> Abdm.Predicate.eval q.q_op v q.q_value
  | None -> false

let ssa_matches seg_name record (ssa : Dli_ast.ssa) =
  String.equal seg_name ssa.ssa_segment
  && (match ssa.ssa_qual with
      | Some q -> qual_satisfied record q
      | None -> true)

(* the record of one instance, by segment type and key *)
let instance t seg_name key =
  match
    retrieve t
      (Abdm.Query.conj [ Abdm.Predicate.file_eq seg_name; int_pred seg_name key ])
  with
  | kr :: _ -> Some kr
  | [] -> None

(* (segment, key, record) ancestors, nearest first *)
let rec ancestor_chain t seg_name record =
  match Types.find_segment t.hie_schema seg_name with
  | Some { seg_parent = Some parent; _ } ->
    begin
      match Abdm.Record.value_of record parent with
      | Some (Abdm.Value.Int parent_key) ->
        begin
          match instance t parent parent_key with
          | Some (_, parent_record) ->
            (parent, parent_key, parent_record)
            :: ancestor_chain t parent parent_record
          | None -> []
        end
      | Some _ | None -> []
    end
  | Some { seg_parent = None; _ } | None -> []

(* Does the instance's ancestor path satisfy the leading SSAs (in order,
   outermost first)? *)
let path_satisfied t seg_name record path_ssas =
  let ancestors = List.rev (ancestor_chain t seg_name record) in
  (* ancestors: root first *)
  let rec align ssas ancestors =
    match ssas, ancestors with
    | [], _ -> true
    | _ :: _, [] -> false
    | (ssa : Dli_ast.ssa) :: ssa_rest, (aseg, _, arecord) :: anc_rest ->
      if String.equal ssa.ssa_segment aseg then
        ssa_matches aseg arecord ssa && align ssa_rest anc_rest
      else align ssas anc_rest
  in
  ignore seg_name;
  align path_ssas ancestors

let found t seg_name key record =
  t.position <- Some (seg_name, key);
  t.parentage <- Some (seg_name, key);
  let fields =
    List.filter_map
      (fun (kw : Abdm.Keyword.t) ->
        if String.equal kw.attribute Abdm.Keyword.file_attribute then None
        else Some (kw.attribute, kw.value))
      record.Abdm.Record.keywords
  in
  Ok (Found { segment = seg_name; key; fields })

let exec_gu t ssas =
  let* target, path =
    match List.rev ssas with
    | target :: rev_path -> Ok (target, List.rev rev_path)
    | [] -> err "GU: missing SSA"
  in
  let* _ = segment t target.Dli_ast.ssa_segment in
  let* () =
    List.fold_left
      (fun acc (ssa : Dli_ast.ssa) ->
        let* () = acc in
        let* _ = segment t ssa.ssa_segment in
        Ok ())
      (Ok ()) path
  in
  let seq = sequence t in
  let hit =
    List.find_opt
      (fun (seg_name, _, record) ->
        ssa_matches seg_name record target
        && path_satisfied t seg_name record path)
      seq
  in
  match hit with
  | Some (seg_name, key, record) -> found t seg_name key record
  | None ->
    t.position <- None;
    t.parentage <- None;
    Ok Not_found

let after_position seq position =
  match position with
  | None -> seq
  | Some (seg, key) ->
    let rec drop = function
      | [] -> []
      | (s, k, _) :: rest when String.equal s seg && k = key -> rest
      | _ :: rest -> drop rest
    in
    drop seq

let exec_gn t ssa =
  let* () =
    match ssa with
    | Some (s : Dli_ast.ssa) ->
      let* _ = segment t s.ssa_segment in
      Ok ()
    | None -> Ok ()
  in
  let seq = after_position (sequence t) t.position in
  let hit =
    List.find_opt
      (fun (seg_name, _, record) ->
        match ssa with
        | Some s -> ssa_matches seg_name record s
        | None -> true)
      seq
  in
  match hit with
  | Some (seg_name, key, record) -> found t seg_name key record
  | None -> Ok Not_found

let exec_gnp t ssa =
  let* parent =
    match t.parentage with
    | Some p -> Ok p
    | None -> err "GNP: no parentage established (issue GU/GN first)"
  in
  let* () =
    match ssa with
    | Some (s : Dli_ast.ssa) ->
      let* _ = segment t s.ssa_segment in
      Ok ()
    | None -> Ok ()
  in
  let descendant_of (seg_name, record) (pseg, pkey) =
    List.exists
      (fun (aseg, akey, _) -> String.equal aseg pseg && akey = pkey)
      (ancestor_chain t seg_name record)
  in
  (* GNP scans forward from the current position but never past the
     parent's subtree *)
  let seq = after_position (sequence t) t.position in
  let rec scan = function
    | [] -> Ok Not_found
    | (seg_name, key, record) :: rest ->
      if not (descendant_of (seg_name, record) parent) then Ok Not_found
      else if
        match ssa with
        | Some s -> ssa_matches seg_name record s
        | None -> true
      then begin
        (* GNP retains parentage: position advances, parent stays *)
        t.position <- Some (seg_name, key);
        let fields =
          List.filter_map
            (fun (kw : Abdm.Keyword.t) ->
              if String.equal kw.attribute Abdm.Keyword.file_attribute then None
              else Some (kw.attribute, kw.value))
            record.Abdm.Record.keywords
        in
        Ok (Found { segment = seg_name; key; fields })
      end
      else scan rest
  in
  scan seq

let exec_isrt t path seg_name fields =
  let* seg = segment t seg_name in
  (* validate the fields *)
  let* () =
    List.fold_left
      (fun acc (f, _) ->
        let* () = acc in
        if
          List.exists
            (fun (fd : Types.field) -> String.equal fd.field_name f)
            seg.seg_fields
        then Ok ()
        else err "segment %s has no field %S" seg_name f)
      (Ok ()) fields
  in
  let* parent_keyword =
    match seg.seg_parent, path with
    | None, [] -> Ok []
    | None, _ :: _ -> err "ISRT %s: root segments take no parent path" seg_name
    | Some parent, _ :: _ ->
      (* resolve the parent instance with a GU over the path *)
      let* resolved = exec_gu t path in
      begin
        match resolved with
        | Found { segment = found_seg; key; _ } ->
          if String.equal found_seg parent then
            Ok [ Abdm.Keyword.make parent (Abdm.Value.Int key) ]
          else
            err "ISRT %s: path resolves to a %s, expected parent %s" seg_name
              found_seg parent
        | Not_found -> err "ISRT %s: parent path not found" seg_name
        | Inserted _ | Replaced _ | Deleted _ ->
          err "ISRT %s: unexpected path resolution" seg_name
      end
    | Some parent, [] ->
      (* fall back on current parentage *)
      match t.parentage with
      | Some (pseg, pkey) when String.equal pseg parent ->
        Ok [ Abdm.Keyword.make parent (Abdm.Value.Int pkey) ]
      | Some (pseg, _) ->
        err "ISRT %s: current parentage is a %s, expected %s" seg_name pseg
          parent
      | None -> err "ISRT %s: no parent path and no parentage" seg_name
  in
  let keywords =
    (Abdm.Keyword.file seg_name
     :: Abdm.Keyword.make seg_name Abdm.Value.Null
     :: List.map
          (fun (fd : Types.field) ->
            let v =
              match List.assoc_opt fd.field_name fields with
              | Some v -> v
              | None -> Abdm.Value.Null
            in
            Abdm.Keyword.make fd.field_name v)
          seg.seg_fields)
    @ parent_keyword
  in
  let record = Abdm.Record.make keywords in
  let* () =
    match Abdm.Descriptor.validate t.descriptor record with
    | Ok () -> Ok ()
    | Error msg -> err "ISRT %s: %s" seg_name msg
  in
  match issue t (Abdl.Ast.Insert record) with
  | Abdl.Exec.Inserted key ->
    let keyed = Abdm.Record.set record seg_name (Abdm.Value.Int key) in
    Mapping.Kernel.replace t.kernel key keyed;
    t.position <- Some (seg_name, key);
    (* parentage stays at the new segment's parent so sibling ISRTs chain *)
    t.parentage <-
      (match parent_keyword with
       | [ (kw : Abdm.Keyword.t) ] ->
         begin
           match kw.value with
           | Abdm.Value.Int pkey -> Some (kw.attribute, pkey)
           | Abdm.Value.Float _ | Abdm.Value.Str _ | Abdm.Value.Null ->
             Some (seg_name, key)
         end
       | _ -> Some (seg_name, key));
    Ok (Inserted key)
  | Abdl.Exec.Rows _ | Abdl.Exec.Deleted _ | Abdl.Exec.Updated _ ->
    err "ISRT %s: kernel refused the insert" seg_name

let exec_repl t fields =
  match t.position with
  | None -> err "REPL: no current segment"
  | Some (seg_name, key) ->
    let* seg = segment t seg_name in
    let* () =
      List.fold_left
        (fun acc (f, _) ->
          let* () = acc in
          if
            List.exists
              (fun (fd : Types.field) -> String.equal fd.field_name f)
              seg.seg_fields
          then Ok ()
          else err "REPL: segment %s has no field %S" seg_name f)
        (Ok ()) fields
    in
    let query =
      Abdm.Query.conj [ Abdm.Predicate.file_eq seg_name; int_pred seg_name key ]
    in
    let modifiers =
      List.map (fun (f, v) -> Abdm.Modifier.Set_const (f, v)) fields
    in
    begin
      match issue t (Abdl.Ast.Update (query, modifiers)) with
      | Abdl.Exec.Updated n -> Ok (Replaced n)
      | Abdl.Exec.Rows _ | Abdl.Exec.Inserted _ | Abdl.Exec.Deleted _ ->
        err "REPL: kernel returned a non-update result"
    end

let exec_dlet t =
  match t.position with
  | None -> err "DLET: no current segment"
  | Some (seg_name, key) ->
    (* delete the segment and its whole subtree *)
    let total = ref 0 in
    let rec delete seg_name key =
      List.iter
        (fun (child : Types.segment) ->
          retrieve t
            (Abdm.Query.conj
               [ Abdm.Predicate.file_eq child.seg_name; int_pred seg_name key ])
          |> List.iter (fun (child_key, _) -> delete child.seg_name child_key))
        (Types.children t.hie_schema seg_name);
      match
        issue t
          (Abdl.Ast.Delete
             (Abdm.Query.conj
                [ Abdm.Predicate.file_eq seg_name; int_pred seg_name key ]))
      with
      | Abdl.Exec.Deleted n -> total := !total + n
      | Abdl.Exec.Rows _ | Abdl.Exec.Inserted _ | Abdl.Exec.Updated _ -> ()
    in
    delete seg_name key;
    t.position <- None;
    t.parentage <- None;
    Ok (Deleted !total)

let execute t = function
  | Dli_ast.Gu ssas -> exec_gu t ssas
  | Dli_ast.Gn ssa -> exec_gn t ssa
  | Dli_ast.Gnp ssa -> exec_gnp t ssa
  | Dli_ast.Isrt { path; segment; fields } -> exec_isrt t path segment fields
  | Dli_ast.Repl fields -> exec_repl t fields
  | Dli_ast.Dlet -> exec_dlet t

let run t src =
  match Dli_parser.call src with
  | call -> execute t call
  | exception Dli_parser.Parse_error msg -> Error ("parse error: " ^ msg)

let run_program t src =
  List.map (fun call -> call, execute t call) (Dli_parser.program src)

let position t = t.position

let request_log t = List.rev t.log

let clear_log t = t.log <- []

let outcome_to_string = function
  | Found { segment; key; fields } ->
    Printf.sprintf "%s (key %d): %s" segment key
      (String.concat ", "
         (List.map
            (fun (f, v) -> Printf.sprintf "%s=%s" f (Abdm.Value.to_display v))
            fields))
  | Not_found -> "status GE (not found)"
  | Inserted key -> Printf.sprintf "inserted (key %d)" key
  | Replaced n -> Printf.sprintf "replaced %d segment(s)" n
  | Deleted n -> Printf.sprintf "deleted %d segment(s)" n
