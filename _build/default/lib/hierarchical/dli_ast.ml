type qualification = {
  q_field : string;
  q_op : Abdm.Predicate.op;
  q_value : Abdm.Value.t;
}

type ssa = {
  ssa_segment : string;
  ssa_qual : qualification option;
}

type call =
  | Gu of ssa list
  | Gn of ssa option
  | Gnp of ssa option
  | Isrt of {
      path : ssa list;
      segment : string;
      fields : (string * Abdm.Value.t) list;
    }
  | Repl of (string * Abdm.Value.t) list
  | Dlet

let ssa_to_string { ssa_segment; ssa_qual } =
  match ssa_qual with
  | Some { q_field; q_op; q_value } ->
    Printf.sprintf "%s(%s %s %s)" ssa_segment q_field
      (Abdm.Predicate.op_to_string q_op)
      (Abdm.Value.to_string q_value)
  | None -> ssa_segment

let fields_to_string fields =
  String.concat ", "
    (List.map
       (fun (f, v) -> Printf.sprintf "%s = %s" f (Abdm.Value.to_string v))
       fields)

let to_string = function
  | Gu ssas -> "GU " ^ String.concat " " (List.map ssa_to_string ssas)
  | Gn None -> "GN"
  | Gn (Some ssa) -> "GN " ^ ssa_to_string ssa
  | Gnp None -> "GNP"
  | Gnp (Some ssa) -> "GNP " ^ ssa_to_string ssa
  | Isrt { path; segment; fields } ->
    Printf.sprintf "ISRT %s%s (%s)"
      (String.concat " " (List.map ssa_to_string path))
      (if path = [] then segment else " " ^ segment)
      (fields_to_string fields)
  | Repl fields -> Printf.sprintf "REPL (%s)" (fields_to_string fields)
  | Dlet -> "DLET"
