(** The hierarchical data model for the MLDS DL/I language interface:
    segment types arranged in trees (a physical database is a forest of
    rooted hierarchies). The hierarchical→ABDM transformation gives one
    file per segment type; each child record carries a keyword naming the
    parent segment type and holding the parent's key, and traversal order
    (the {e hierarchic sequence}) is reconstructed from those links. *)

type field_type =
  | F_int
  | F_float
  | F_string of int  (** CHAR(n); 0 when unconstrained *)

type field = {
  field_name : string;
  field_type : field_type;
}

type segment = {
  seg_name : string;
  seg_parent : string option;  (** [None] for a root segment *)
  seg_fields : field list;
}

type schema = {
  name : string;
  segments : segment list;  (** declaration order; parents precede children *)
}

val find_segment : schema -> string -> segment option

(** Root segment types, declaration order. *)
val roots : schema -> segment list

(** Child segment types of a segment, declaration order. *)
val children : schema -> string -> segment list

(** Ancestor segment-type names, child-to-root order (excludes self). *)
val ancestors : schema -> string -> string list

(** [validate schema] — unique names, parents declared before use, no
    cycles, at least one root. *)
val validate : schema -> (unit, string) result

(** The AB(hierarchical) kernel descriptor: per segment, a key attribute
    named after the segment, its fields, and (non-roots) a parent
    reference attribute named after the parent segment. *)
val descriptor : schema -> Abdm.Descriptor.t

val field_type_to_string : field_type -> string
