(** Abstract syntax of the DL/I call subset served by the MLDS hierarchical
    language interface: GU, GN, GNP with segment search arguments (SSAs),
    ISRT, REPL, DLET. *)

type qualification = {
  q_field : string;
  q_op : Abdm.Predicate.op;
  q_value : Abdm.Value.t;
}

(** A segment search argument: segment name plus optional qualification. *)
type ssa = {
  ssa_segment : string;
  ssa_qual : qualification option;
}

type call =
  | Gu of ssa list  (** GET UNIQUE along a qualified path *)
  | Gn of ssa option  (** GET NEXT in hierarchic sequence *)
  | Gnp of ssa option  (** GET NEXT WITHIN PARENT *)
  | Isrt of {
      path : ssa list;  (** parent path; empty for a root segment *)
      segment : string;
      fields : (string * Abdm.Value.t) list;
    }
  | Repl of (string * Abdm.Value.t) list  (** replace fields of current *)
  | Dlet  (** delete current segment and its subtree *)

val to_string : call -> string
