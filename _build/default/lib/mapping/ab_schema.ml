type flavor =
  | Fun of Transformer.Transform.t
  | Net of Network.Schema.t

type held =
  | Member_holds
  | Owner_holds

let network_schema = function
  | Fun t -> t.Transformer.Transform.net
  | Net schema -> schema

let ref_attributes flavor record =
  let schema = network_schema flavor in
  let member_sets = Network.Schema.sets_with_member schema record in
  let owner_sets = Network.Schema.sets_with_owner schema record in
  match flavor with
  | Net _ ->
    List.filter_map
      (fun (s : Network.Types.set_type) ->
        if String.equal s.set_owner Network.Schema.system_owner then None
        else Some (s.set_name, Member_holds))
      member_sets
  | Fun t ->
    let origin name = Transformer.Transform.origin_of_set t name in
    let member_refs =
      List.filter_map
        (fun (s : Network.Types.set_type) ->
          match origin s.set_name with
          | Some Transformer.Transform.O_isa
          | Some (Transformer.Transform.O_function_member _)
          | Some (Transformer.Transform.O_link _) ->
            Some (s.set_name, Member_holds)
          | Some Transformer.Transform.O_system
          | Some (Transformer.Transform.O_function_owner _)
          | None -> None)
        member_sets
    in
    let owner_refs =
      List.filter_map
        (fun (s : Network.Types.set_type) ->
          match origin s.set_name with
          | Some (Transformer.Transform.O_function_owner _) ->
            Some (s.set_name, Owner_holds)
          | Some Transformer.Transform.O_system
          | Some Transformer.Transform.O_isa
          | Some (Transformer.Transform.O_function_member _)
          | Some (Transformer.Transform.O_link _)
          | None -> None)
        owner_sets
    in
    member_refs @ owner_refs

let is_link_record flavor record =
  match flavor with
  | Net _ -> false
  | Fun t ->
    List.exists
      (fun (l : Transformer.Transform.link) ->
        String.equal l.link_record record)
      t.Transformer.Transform.links

let descriptor flavor =
  let schema = network_schema flavor in
  let attr_of_item (a : Network.Types.attribute) =
    {
      Abdm.Descriptor.attr_name = a.attr_name;
      attr_type =
        (match a.attr_type with
         | Network.Types.A_int -> Abdm.Descriptor.T_int
         | Network.Types.A_float -> Abdm.Descriptor.T_float
         | Network.Types.A_string -> Abdm.Descriptor.T_string);
      attr_length = a.attr_length;
      attr_unique = not a.attr_dup_allowed;
    }
  in
  let int_attr ?(unique = false) name =
    {
      Abdm.Descriptor.attr_name = name;
      attr_type = Abdm.Descriptor.T_int;
      attr_length = 0;
      attr_unique = unique;
    }
  in
  let file_of_record (r : Network.Types.record_type) =
    let key_attr =
      if is_link_record flavor r.rec_name then []
      else [ int_attr r.rec_name ]
    in
    let refs =
      List.map (fun (set, _) -> int_attr set)
        (ref_attributes flavor r.rec_name)
    in
    {
      Abdm.Descriptor.file_name = r.rec_name;
      attributes = key_attr @ List.map attr_of_item r.rec_attributes @ refs;
    }
  in
  List.fold_left
    (fun d r -> Abdm.Descriptor.add_file d (file_of_record r))
    (Abdm.Descriptor.make schema.Network.Schema.name)
    schema.Network.Schema.records

let entity_key record_type record ~dbkey =
  match Abdm.Record.value_of record record_type with
  | Some (Abdm.Value.Int k) -> k
  | Some (Abdm.Value.Float _ | Abdm.Value.Str _ | Abdm.Value.Null) | None ->
    dbkey
