(** Attribute-based schema construction — the data-model transformations of
    §III.C, producing the kernel descriptor for a database.

    Representation (one file per record type):
    - [<FILE, record_type>] names the file;
    - [<record_type, k>] is the artificial unique-key attribute (§III.C.1);
      [k] equals the database key of the entity's {e primary} record;
    - one keyword per scalar item;
    - one keyword per set the record participates in, named after the set
      and holding the related record's key ([Null] when unconnected):
      ISA sets, single-valued-function sets, and LINK sets store the
      reference in the {e member} record; one-to-many-function sets store
      it in the {e owner} record (which is duplicated per member, exactly
      like records duplicated by scalar multi-valued functions —
      §VI.D.2). *)

(** Which flavour of attribute-based database a descriptor describes. *)
type flavor =
  | Fun of Transformer.Transform.t
      (** AB(functional): a network schema transformed from Daplex, with
          set origins *)
  | Net of Network.Schema.t
      (** AB(network): a native network schema; every non-SYSTEM set is
          member-held *)

type held =
  | Member_holds
  | Owner_holds

(** [ref_attributes flavor record] — the set-reference attributes carried
    by records of [record]: (set name, who holds it). *)
val ref_attributes : flavor -> string -> (string * held) list

(** [descriptor flavor] builds the kernel database descriptor. *)
val descriptor : flavor -> Abdm.Descriptor.t

(** [network_schema flavor] — the underlying network schema. *)
val network_schema : flavor -> Network.Schema.t

(** [entity_key record_type record ~dbkey] — the entity's unique key: the
    value of the record's own key attribute when set, else [dbkey] (LINK
    records carry no key attribute). *)
val entity_key : string -> Abdm.Record.t -> dbkey:int -> int
