type key_map = (string * string, int) Hashtbl.t

let find_key map ~type_name ~row_key = Hashtbl.find_opt map (type_name, row_key)

let fail fmt = Printf.ksprintf invalid_arg fmt

let function_set transform type_name fn_name =
  Transformer.Transform.set_of_function transform ~type_name ~fn:fn_name

let isa_set transform ~super ~sub =
  List.find_opt
    (fun (s : Network.Types.set_type) ->
      String.equal s.set_owner super
      && String.equal s.set_member sub
      && Transformer.Transform.origin_of_set transform s.set_name
         = Some Transformer.Transform.O_isa)
    transform.Transformer.Transform.net.Network.Schema.sets

let range_of_function schema type_name fn_name =
  match Daplex.Schema.find_function schema type_name fn_name with
  | None -> fail "loader: %s has no function %s" type_name fn_name
  | Some fn ->
    match Daplex.Schema.classify schema fn with
    | Daplex.Schema.C_single_valued r | Daplex.Schema.C_multi_valued r -> Some r
    | Daplex.Schema.C_scalar | Daplex.Schema.C_scalar_multi -> None

(* All-null primary record template for a row's type. *)
let primary_template flavor descriptor type_name =
  match Abdm.Descriptor.find_file descriptor type_name with
  | None -> fail "loader: unknown record type %s" type_name
  | Some file ->
    ignore flavor;
    Abdm.Record.make
      (Abdm.Keyword.file type_name
       :: List.map
            (fun (a : Abdm.Descriptor.attribute) ->
              Abdm.Keyword.make a.attr_name Abdm.Value.Null)
            file.attributes)

let rec cartesian = function
  | [] -> [ [] ]
  | (attr, values) :: rest ->
    let tails = cartesian rest in
    List.concat_map
      (fun v -> List.map (fun tail -> (attr, v) :: tail) tails)
      values

let load kernel transform rows =
  let schema = transform.Transformer.Transform.source in
  let flavor = Ab_schema.Fun transform in
  let descriptor = Ab_schema.descriptor flavor in
  let keys : key_map = Hashtbl.create 64 in
  let key_of type_name row_key =
    match Hashtbl.find_opt keys (type_name, row_key) with
    | Some k -> k
    | None -> fail "loader: unresolved reference %s/%s" type_name row_key
  in
  let validate record =
    match Abdm.Descriptor.validate descriptor record with
    | Ok () -> ()
    | Error msg -> fail "loader: %s" msg
  in

  (* Pass 1: primary records with scalar values; key := own dbkey. *)
  let pass1 (row : Daplex.University.row) =
    let base = primary_template flavor descriptor row.row_type in
    let with_scalars =
      List.fold_left
        (fun record (fn_name, value) ->
          match (value : Daplex.University.fvalue) with
          | Daplex.University.Scalar v -> Abdm.Record.set record fn_name v
          | Daplex.University.Scalars _ | Daplex.University.Ref _
          | Daplex.University.Refs _ -> record)
        base row.row_values
    in
    let k = Kernel.insert kernel with_scalars in
    let keyed = Abdm.Record.set with_scalars row.row_type (Abdm.Value.Int k) in
    validate keyed;
    Kernel.replace kernel k keyed;
    if Hashtbl.mem keys (row.row_type, row.row_key) then
      fail "loader: duplicate row key %s/%s" row.row_type row.row_key;
    Hashtbl.replace keys (row.row_type, row.row_key) k
  in
  List.iter pass1 rows;

  (* Pass 2: references, multi-valued expansion, LINK records. *)
  let pending_links = ref [] in
  let pass2 (row : Daplex.University.row) =
    let type_name = row.row_type in
    let k = key_of type_name row.row_key in
    let self_query =
      Abdm.Query.conj
        [
          Abdm.Predicate.file_eq type_name;
          Abdm.Predicate.make type_name Abdm.Predicate.Eq (Abdm.Value.Int k);
        ]
    in
    let simple_updates = ref [] in
    let dims = ref [] in
    (* ISA references *)
    List.iter
      (fun (super, super_row) ->
        match isa_set transform ~super ~sub:type_name with
        | None -> fail "loader: no ISA set %s -> %s" super type_name
        | Some s ->
          let v = Abdm.Value.Int (key_of super super_row) in
          simple_updates :=
            Abdm.Modifier.Set_const (s.set_name, v) :: !simple_updates)
      row.row_isa;
    (* function values *)
    List.iter
      (fun (fn_name, value) ->
        match (value : Daplex.University.fvalue) with
        | Daplex.University.Scalar _ -> ()
        | Daplex.University.Scalars values ->
          if values <> [] then dims := (fn_name, values) :: !dims
        | Daplex.University.Ref target ->
          begin
            match range_of_function schema type_name fn_name with
            | None -> fail "loader: %s.%s is not entity-valued" type_name fn_name
            | Some range ->
              match function_set transform type_name fn_name with
              | None -> fail "loader: no set for %s.%s" type_name fn_name
              | Some s ->
                let v = Abdm.Value.Int (key_of range target) in
                simple_updates :=
                  Abdm.Modifier.Set_const (s.set_name, v) :: !simple_updates
          end
        | Daplex.University.Refs targets ->
          match range_of_function schema type_name fn_name with
          | None -> fail "loader: %s.%s is not entity-valued" type_name fn_name
          | Some range ->
            match function_set transform type_name fn_name with
            | None -> fail "loader: no set for %s.%s" type_name fn_name
            | Some s ->
              match
                Transformer.Transform.origin_of_set transform s.set_name
              with
              | Some (Transformer.Transform.O_function_owner _) ->
                let values =
                  List.map
                    (fun target -> Abdm.Value.Int (key_of range target))
                    targets
                in
                if values <> [] then dims := (s.set_name, values) :: !dims
              | Some (Transformer.Transform.O_link _) ->
                (* Emit LINK records once, from the link's A side. *)
                let link =
                  List.find_opt
                    (fun (l : Transformer.Transform.link) ->
                      String.equal (snd l.link_side_a) type_name
                      && String.equal (fst l.link_side_a) fn_name)
                    transform.Transformer.Transform.links
                in
                begin
                  match link with
                  | Some l ->
                    List.iter
                      (fun target ->
                        pending_links :=
                          ( l.link_record,
                            l.link_set_a,
                            k,
                            l.link_set_b,
                            key_of range target )
                          :: !pending_links)
                      targets
                  | None -> ()  (* the B side: A side already emitted *)
                end
              | Some Transformer.Transform.O_system
              | Some Transformer.Transform.O_isa
              | Some (Transformer.Transform.O_function_member _)
              | None ->
                fail "loader: %s.%s is multi-valued but set %s is not"
                  type_name fn_name s.set_name)
      row.row_values;
    if !simple_updates <> [] then
      ignore (Kernel.update kernel self_query !simple_updates);
    (* Multi-valued expansion: first combination updates the primary
       record; the rest insert duplicated copies (§VI.D.2). *)
    match !dims with
    | [] -> ()
    | dims ->
      begin
        match cartesian dims with
        | [] -> ()
        | first :: rest ->
          let set_all record combo =
            List.fold_left
              (fun r (attr, v) -> Abdm.Record.set r attr v)
              record combo
          in
          let first_mods =
            List.map (fun (attr, v) -> Abdm.Modifier.Set_const (attr, v)) first
          in
          ignore (Kernel.update kernel self_query first_mods);
          begin
            match Kernel.get kernel k with
            | None -> fail "loader: primary record %d vanished" k
            | Some base ->
              List.iter
                (fun combo ->
                  let copy = set_all base combo in
                  validate copy;
                  ignore (Kernel.insert kernel copy))
                rest
          end
      end
  in
  List.iter pass2 rows;
  (* LINK records *)
  List.iter
    (fun (link_record, set_a, key_a, set_b, key_b) ->
      let record =
        Abdm.Record.make
          [
            Abdm.Keyword.file link_record;
            Abdm.Keyword.make set_a (Abdm.Value.Int key_a);
            Abdm.Keyword.make set_b (Abdm.Value.Int key_b);
          ]
      in
      validate record;
      ignore (Kernel.insert kernel record))
    (List.rev !pending_links);
  keys

let university ?(backends = 0) ?scale () =
  let schema = Daplex.University.schema () in
  let transform = Transformer.Transform.transform schema in
  let kernel =
    if backends >= 1 then Kernel.multi ~name:"university" backends
    else Kernel.single ~name:"university" ()
  in
  let rows =
    match scale with
    | Some n -> Daplex.University.scaled_rows n
    | None -> Daplex.University.rows
  in
  let keys = load kernel transform rows in
  kernel, transform, keys
