lib/mapping/ab_schema.mli: Abdm Network Transformer
