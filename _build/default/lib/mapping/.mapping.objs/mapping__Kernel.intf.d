lib/mapping/kernel.mli: Abdl Abdm Mbds
