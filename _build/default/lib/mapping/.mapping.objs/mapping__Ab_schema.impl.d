lib/mapping/ab_schema.ml: Abdm List Network String Transformer
