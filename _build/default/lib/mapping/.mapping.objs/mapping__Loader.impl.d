lib/mapping/loader.ml: Ab_schema Abdm Daplex Hashtbl Kernel List Network Printf String Transformer
