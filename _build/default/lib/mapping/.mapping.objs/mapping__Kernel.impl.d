lib/mapping/kernel.ml: Abdl Abdm Mbds
