lib/mapping/loader.mli: Daplex Kernel Transformer
