(** Loads a functional-database instance into the kernel as an
    AB(functional) database (the Goisman mapping of §III.C.1 over the
    transformed network schema of Chapter V).

    Loading is two-pass: pass one inserts each entity's primary record
    (scalar values; references null) and fixes its unique key to the
    primary record's database key; pass two wires references — ISA links,
    single-valued functions (member-held), one-to-many functions
    (owner-held, duplicating the owner record per member exactly as the
    paper's scalar-multi-valued duplication does), scalar multi-valued
    values, and LINK records for many-to-many pairs. *)

(** Maps (type name, row key) to the entity's unique key. *)
type key_map

(** [load kernel transform rows] populates the kernel; validates every
    inserted record against the AB(functional) descriptor. Raises
    [Invalid_argument] on rows referencing unknown types, functions, or
    row keys, or on validation failure. *)
val load :
  Kernel.t -> Transformer.Transform.t -> Daplex.University.row list -> key_map

val find_key : key_map -> type_name:string -> row_key:string -> int option

(** [university ?backends ?scale ()] — convenience: transform the
    University schema and load its sample rows (scaled when [scale] is
    given) into a fresh kernel ([backends = 0] or absent → single store;
    [n >= 1] → MBDS with [n] backends). Returns kernel, transform and key
    map. *)
val university :
  ?backends:int -> ?scale:int -> unit ->
  Kernel.t * Transformer.Transform.t * key_map
