type aggregate =
  | Count
  | Sum
  | Avg
  | Min
  | Max

type target_item =
  | T_all
  | T_attr of string
  | T_agg of aggregate * string

type request =
  | Insert of Abdm.Record.t
  | Delete of Abdm.Query.t
  | Update of Abdm.Query.t * Abdm.Modifier.t list
  | Retrieve of retrieve
  | Retrieve_common of retrieve_common

and retrieve = {
  query : Abdm.Query.t;
  targets : target_item list;
  by : string option;
}

and retrieve_common = {
  rc_left : Abdm.Query.t;
  rc_left_attr : string;
  rc_right : Abdm.Query.t;
  rc_right_attr : string;
  rc_targets : target_item list;
}

type transaction = request list

let retrieve ?by query targets = Retrieve { query; targets; by }

let has_aggregate targets =
  let is_agg = function
    | T_agg _ -> true
    | T_all | T_attr _ -> false
  in
  List.exists is_agg targets

let aggregate_to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let target_to_string = function
  | T_all -> "ALL"
  | T_attr attr -> attr
  | T_agg (agg, attr) -> Printf.sprintf "%s(%s)" (aggregate_to_string agg) attr

let query_to_string = Abdm.Query.to_string

let to_string = function
  | Insert record ->
    let body =
      String.concat ", " (List.map Abdm.Keyword.to_string record.Abdm.Record.keywords)
    in
    Printf.sprintf "INSERT (%s)" body
  | Delete query -> Printf.sprintf "DELETE (%s)" (query_to_string query)
  | Update (query, modifiers) ->
    Printf.sprintf "UPDATE (%s) (%s)" (query_to_string query)
      (String.concat ", " (List.map Abdm.Modifier.to_string modifiers))
  | Retrieve { query; targets; by } ->
    let target_part =
      String.concat ", " (List.map target_to_string targets)
    in
    let by_part =
      match by with
      | Some attr -> " BY " ^ attr
      | None -> ""
    in
    Printf.sprintf "RETRIEVE (%s) (%s)%s" (query_to_string query) target_part
      by_part
  | Retrieve_common { rc_left; rc_left_attr; rc_right; rc_right_attr; rc_targets } ->
    Printf.sprintf "RETRIEVE_COMMON (%s) (%s) AND (%s) (%s) (%s)"
      (query_to_string rc_left) rc_left_attr
      (query_to_string rc_right) rc_right_attr
      (String.concat ", " (List.map target_to_string rc_targets))

let pp ppf request = Format.pp_print_string ppf (to_string request)
