lib/abdl/ast.mli: Abdm Format
