lib/abdl/lexer.mli:
