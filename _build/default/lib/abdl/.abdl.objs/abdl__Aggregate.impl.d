lib/abdl/aggregate.ml: Abdm Ast
