lib/abdl/parser.mli: Abdm Ast
