lib/abdl/exec.ml: Abdm Aggregate Ast Format Hashtbl List Printf String
