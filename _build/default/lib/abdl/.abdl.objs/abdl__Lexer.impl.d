lib/abdl/lexer.ml: Buffer List Printf String
