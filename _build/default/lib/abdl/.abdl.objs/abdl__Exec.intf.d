lib/abdl/exec.mli: Abdm Ast Format
