lib/abdl/ast.ml: Abdm Format List Printf String
