lib/abdl/parser.ml: Abdm Ast Lexer List Printf String
