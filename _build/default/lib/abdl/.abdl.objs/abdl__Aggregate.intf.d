lib/abdl/aggregate.mli: Abdm Ast
