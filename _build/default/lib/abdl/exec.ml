type row = {
  dbkey : Abdm.Store.dbkey option;
  values : (string * Abdm.Value.t) list;
}

type result =
  | Inserted of Abdm.Store.dbkey
  | Deleted of int
  | Updated of int
  | Rows of row list

let project targets (key, record) =
  let value attr =
    match Abdm.Record.value_of record attr with
    | Some v -> v
    | None -> Abdm.Value.Null
  in
  let values =
    List.concat_map
      (fun target ->
        match target with
        | Ast.T_all ->
          List.map
            (fun (kw : Abdm.Keyword.t) -> kw.attribute, kw.value)
            record.Abdm.Record.keywords
        | Ast.T_attr attr -> [ attr, value attr ]
        | Ast.T_agg (agg, attr) ->
          (* Aggregates never reach projection; keep the shape total. *)
          [ Ast.target_to_string (Ast.T_agg (agg, attr)), value attr ])
      targets
  in
  { dbkey = Some key; values }

(* Group selected records by the BY attribute (all in one group without
   one), in ascending group-key order. *)
let group_matches by matches =
  match by with
  | None -> [ Abdm.Value.Null, matches ]
  | Some attr ->
    let key_of (_, record) =
      match Abdm.Record.value_of record attr with
      | Some v -> v
      | None -> Abdm.Value.Null
    in
    let table = Hashtbl.create 16 in
    let order = ref [] in
    let visit ((_, _) as m) =
      let k = key_of m in
      match
        List.find_opt (fun k' -> Abdm.Value.equal k k') !order
      with
      | Some k' ->
        let members = Hashtbl.find table (Abdm.Value.to_string k') in
        members := m :: !members
      | None ->
        order := k :: !order;
        Hashtbl.replace table (Abdm.Value.to_string k) (ref [ m ])
    in
    List.iter visit matches;
    let groups =
      List.rev_map
        (fun k -> k, List.rev !(Hashtbl.find table (Abdm.Value.to_string k)))
        !order
    in
    List.sort (fun (a, _) (b, _) -> Abdm.Value.compare a b) groups

let aggregate_rows (retrieve : Ast.retrieve) matches =
  let groups = group_matches retrieve.by matches in
  let row_of_group (group_key, members) =
    let agg_value agg attr =
      let fold state (_, record) =
        match Abdm.Record.value_of record attr with
        | Some v -> Aggregate.add state v
        | None -> state
      in
      Aggregate.finalize agg (List.fold_left fold Aggregate.empty members)
    in
    let target_values target =
      match target with
      | Ast.T_agg (agg, attr) ->
        [ Ast.target_to_string target, agg_value agg attr ]
      | Ast.T_attr attr ->
        (* A plain attribute among aggregates reports the first group
           member's value. *)
        let v =
          match members with
          | (_, record) :: _ ->
            begin
              match Abdm.Record.value_of record attr with
              | Some v -> v
              | None -> Abdm.Value.Null
            end
          | [] -> Abdm.Value.Null
        in
        [ attr, v ]
      | Ast.T_all -> []
    in
    let values = List.concat_map target_values retrieve.targets in
    let values =
      match retrieve.by with
      | Some attr when not (List.mem_assoc attr values) ->
        (attr, group_key) :: values
      | Some _ | None -> values
    in
    { dbkey = None; values }
  in
  List.map row_of_group groups

let shape_rows (retrieve : Ast.retrieve) matches =
  if Ast.has_aggregate retrieve.targets then aggregate_rows retrieve matches
  else
    let matches =
      match retrieve.by with
      | None -> matches
      | Some attr ->
        let key_of (_, record) =
          match Abdm.Record.value_of record attr with
          | Some v -> v
          | None -> Abdm.Value.Null
        in
        List.stable_sort
          (fun a b -> Abdm.Value.compare (key_of a) (key_of b))
          matches
    in
    List.map (project retrieve.targets) matches

let join_rows (rc : Ast.retrieve_common) ~left ~right =
  (* hash the right side by join-attribute value *)
  let table = Hashtbl.create 64 in
  List.iter
    (fun (_, record) ->
      match Abdm.Record.value_of record rc.rc_right_attr with
      | Some v when not (Abdm.Value.is_null v) ->
        let key = Abdm.Value.to_string v in
        let bucket =
          match Hashtbl.find_opt table key with
          | Some bucket -> bucket
          | None ->
            let bucket = ref [] in
            Hashtbl.replace table key bucket;
            bucket
        in
        bucket := record :: !bucket
      | Some _ | None -> ())
    right;
  let merge left_record right_record =
    let taken = Abdm.Record.attributes left_record in
    let right_file =
      match Abdm.Record.file right_record with
      | Some f -> f
      | None -> "right"
    in
    let renamed =
      List.map
        (fun (kw : Abdm.Keyword.t) ->
          if List.mem kw.attribute taken then
            Abdm.Keyword.make (right_file ^ "." ^ kw.attribute) kw.value
          else kw)
        right_record.Abdm.Record.keywords
    in
    { Abdm.Record.keywords = left_record.Abdm.Record.keywords @ renamed;
      text = "" }
  in
  let project_merged merged =
    let values =
      List.concat_map
        (fun target ->
          match target with
          | Ast.T_all ->
            List.map
              (fun (kw : Abdm.Keyword.t) -> kw.attribute, kw.value)
              merged.Abdm.Record.keywords
          | Ast.T_attr attr ->
            [ ( attr,
                match Abdm.Record.value_of merged attr with
                | Some v -> v
                | None -> Abdm.Value.Null ) ]
          | Ast.T_agg (_, _) ->
            (* aggregates are not defined over joins; render null *)
            [ Ast.target_to_string target, Abdm.Value.Null ])
        rc.rc_targets
    in
    { dbkey = None; values }
  in
  List.concat_map
    (fun (_, left_record) ->
      match Abdm.Record.value_of left_record rc.rc_left_attr with
      | Some v when not (Abdm.Value.is_null v) ->
        begin
          match Hashtbl.find_opt table (Abdm.Value.to_string v) with
          | Some bucket ->
            List.rev_map
              (fun right_record -> project_merged (merge left_record right_record))
              !bucket
          | None -> []
        end
      | Some _ | None -> [])
    left

let run store (request : Ast.request) =
  match request with
  | Ast.Insert record -> Inserted (Abdm.Store.insert store record)
  | Ast.Delete query -> Deleted (Abdm.Store.delete store query)
  | Ast.Update (query, modifiers) ->
    Updated (Abdm.Store.update store query modifiers)
  | Ast.Retrieve retrieve ->
    let matches = Abdm.Store.select store retrieve.query in
    Rows (shape_rows retrieve matches)
  | Ast.Retrieve_common rc ->
    let left = Abdm.Store.select store rc.rc_left in
    let right = Abdm.Store.select store rc.rc_right in
    Rows (join_rows rc ~left ~right)

let run_transaction store requests = List.map (run store) requests

let row_to_string row =
  let cells =
    List.map
      (fun (attr, v) -> Printf.sprintf "%s=%s" attr (Abdm.Value.to_display v))
      row.values
  in
  let prefix =
    match row.dbkey with
    | Some key -> Printf.sprintf "[%d] " key
    | None -> ""
  in
  prefix ^ String.concat ", " cells

let result_to_string = function
  | Inserted key -> Printf.sprintf "INSERTED dbkey=%d" key
  | Deleted n -> Printf.sprintf "DELETED %d" n
  | Updated n -> Printf.sprintf "UPDATED %d" n
  | Rows rows ->
    if rows = [] then "NO RECORDS"
    else String.concat "\n" (List.map row_to_string rows)

let pp_result ppf r = Format.pp_print_string ppf (result_to_string r)
