type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | OP of string
  | EOF

exception Lex_error of string

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* '.' admits SQL-style qualified names (t.col) as single identifiers *)
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokens src =
  let len = String.length src in
  let rec lex i acc =
    if i >= len then List.rev (EOF :: acc)
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then lex (i + 1) acc
      else if c = '(' then lex (i + 1) (LPAREN :: acc)
      else if c = ')' then lex (i + 1) (RPAREN :: acc)
      else if c = ',' then lex (i + 1) (COMMA :: acc)
      else if c = ';' then lex (i + 1) (SEMI :: acc)
      else if c = '\'' then lex_string (i + 1) (Buffer.create 16) acc
      else if c = '<' then
        if i + 1 < len && src.[i + 1] = '>' then lex (i + 2) (OP "<>" :: acc)
        else if i + 1 < len && src.[i + 1] = '=' then lex (i + 2) (OP "<=" :: acc)
        else lex (i + 1) (OP "<" :: acc)
      else if c = '>' then
        if i + 1 < len && src.[i + 1] = '=' then lex (i + 2) (OP ">=" :: acc)
        else lex (i + 1) (OP ">" :: acc)
      else if c = '=' then lex (i + 1) (OP "=" :: acc)
      else if c = '!' && i + 1 < len && src.[i + 1] = '=' then
        lex (i + 2) (OP "<>" :: acc)
      else if c = '+' || c = '*' || c = '/' then
        lex (i + 1) (OP (String.make 1 c) :: acc)
      else if c = '-' then
        (* A '-' starting a number is a negative literal; otherwise an
           arithmetic operator. *)
        if i + 1 < len && is_digit src.[i + 1] then lex_number i (i + 1) acc
        else lex (i + 1) (OP "-" :: acc)
      else if is_digit c then lex_number i (i + 1) acc
      else if is_ident_start c then lex_ident i (i + 1) acc
      else raise (Lex_error (Printf.sprintf "unexpected character %C at %d" c i))
  and lex_string i buf acc =
    if i >= len then raise (Lex_error "unterminated string literal")
    else if src.[i] = '\'' then
      if i + 1 < len && src.[i + 1] = '\'' then begin
        (* doubled quote escapes a quote *)
        Buffer.add_char buf '\'';
        lex_string (i + 2) buf acc
      end
      else lex (i + 1) (STRING (Buffer.contents buf) :: acc)
    else begin
      Buffer.add_char buf src.[i];
      lex_string (i + 1) buf acc
    end
  and lex_number start i acc =
    let j = ref i in
    while !j < len && is_digit src.[!j] do incr j done;
    if !j < len && src.[!j] = '.' && !j + 1 < len && is_digit src.[!j + 1] then begin
      incr j;
      while !j < len && is_digit src.[!j] do incr j done;
      let text = String.sub src start (!j - start) in
      lex !j (FLOAT (float_of_string text) :: acc)
    end
    else
      let text = String.sub src start (!j - start) in
      lex !j (INT (int_of_string text) :: acc)
  and lex_ident start i acc =
    let j = ref i in
    while !j < len && is_ident_char src.[!j] do incr j done;
    let text = String.sub src start (!j - start) in
    lex !j (IDENT text :: acc)
  in
  lex 0 []

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "'%s'" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | SEMI -> ";"
  | OP s -> s
  | EOF -> "<eof>"
