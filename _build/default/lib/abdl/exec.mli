(** ABDL request execution against a single ABDM store. The MBDS
    controller reuses [project] and [aggregate_rows] to merge per-backend
    partial results. *)

type row = {
  dbkey : Abdm.Store.dbkey option;
      (** the database key for plain retrieves; [None] for aggregate rows *)
  values : (string * Abdm.Value.t) list;
}

type result =
  | Inserted of Abdm.Store.dbkey
  | Deleted of int
  | Updated of int
  | Rows of row list

(** [run store request] executes one request. Retrieval rows come back in
    ascending database-key order; a BY clause without aggregates sorts by
    that attribute instead (stable), and with aggregates groups by it. *)
val run : Abdm.Store.t -> Ast.request -> result

(** [run_transaction store requests] executes sequentially. *)
val run_transaction : Abdm.Store.t -> Ast.transaction -> result list

(** [project targets (key, record)] shapes one record per the target list
    ([T_all] → every keyword; [T_attr a] → that attribute, [Null] when
    absent). *)
val project :
  Ast.target_item list -> Abdm.Store.dbkey * Abdm.Record.t -> row

(** [aggregate_rows retrieve matches] builds the grouped / aggregated rows
    of a RETRIEVE with aggregates over the already-selected records. *)
val aggregate_rows :
  Ast.retrieve -> (Abdm.Store.dbkey * Abdm.Record.t) list -> row list

(** [shape_rows retrieve matches] produces the final row list for any
    RETRIEVE (aggregate or plain) from selected records. *)
val shape_rows :
  Ast.retrieve -> (Abdm.Store.dbkey * Abdm.Record.t) list -> row list

(** [join_rows rc ~left ~right] — the RETRIEVE_COMMON equi-join: pairs each
    left record with every right record whose join attribute carries the
    same (non-null) value, merges the keyword lists (right-hand attributes
    colliding with a left name are renamed [file.attr]), and projects
    [rc_targets]. Join rows carry no database key. *)
val join_rows :
  Ast.retrieve_common ->
  left:(Abdm.Store.dbkey * Abdm.Record.t) list ->
  right:(Abdm.Store.dbkey * Abdm.Record.t) list ->
  row list

val result_to_string : result -> string

val pp_result : Format.formatter -> result -> unit
