exception Parse_error of string

type stream = { mutable toks : Lexer.token list }

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let peek s =
  match s.toks with
  | [] -> Lexer.EOF
  | tok :: _ -> tok

let advance s =
  match s.toks with
  | [] -> ()
  | _ :: rest -> s.toks <- rest

let next s =
  let tok = peek s in
  advance s;
  tok

let expect s tok =
  let got = next s in
  if got <> tok then
    fail "expected %s, got %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string got)

let keyword_is tok name =
  match tok with
  | Lexer.IDENT s -> String.uppercase_ascii s = name
  | _ -> false

let ident s =
  match next s with
  | Lexer.IDENT name -> name
  | tok -> fail "expected identifier, got %s" (Lexer.token_to_string tok)

let literal s =
  match next s with
  | Lexer.INT i -> Abdm.Value.Int i
  | Lexer.FLOAT f -> Abdm.Value.Float f
  | Lexer.STRING str -> Abdm.Value.Str str
  | Lexer.IDENT name when String.uppercase_ascii name = "NULL" -> Abdm.Value.Null
  | Lexer.IDENT name ->
    (* the paper writes bare identifiers for string values: (FILE = course) *)
    Abdm.Value.Str name
  | tok -> fail "expected literal, got %s" (Lexer.token_to_string tok)

(* --- qualifications ------------------------------------------------- *)

type bexpr =
  | B_pred of Abdm.Predicate.t
  | B_and of bexpr * bexpr
  | B_or of bexpr * bexpr

let rec to_dnf = function
  | B_pred p -> Abdm.Query.conj [ p ]
  | B_or (a, b) -> Abdm.Query.disj [ to_dnf a; to_dnf b ]
  | B_and (a, b) -> Abdm.Query.conj_and (to_dnf a) (to_dnf b)

let relop s =
  match next s with
  | Lexer.OP op ->
    begin
      match Abdm.Predicate.op_of_string op with
      | Some o -> o
      | None -> fail "expected relational operator, got %s" op
    end
  | tok -> fail "expected relational operator, got %s" (Lexer.token_to_string tok)

let predicate s =
  let attr = ident s in
  let op = relop s in
  let v = literal s in
  B_pred (Abdm.Predicate.make attr op v)

let rec bool_expr s =
  let left = bool_term s in
  if keyword_is (peek s) "OR" then begin
    advance s;
    B_or (left, bool_expr s)
  end
  else left

and bool_term s =
  let left = bool_factor s in
  if keyword_is (peek s) "AND" then begin
    advance s;
    B_and (left, bool_term s)
  end
  else left

and bool_factor s =
  match peek s with
  | Lexer.LPAREN ->
    advance s;
    let e = bool_expr s in
    expect s Lexer.RPAREN;
    e
  | _ -> predicate s

let qualification s =
  expect s Lexer.LPAREN;
  let e = bool_expr s in
  expect s Lexer.RPAREN;
  to_dnf e

(* --- targets --------------------------------------------------------- *)

let aggregate_of_name name =
  match String.uppercase_ascii name with
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let target_item s =
  let name = ident s in
  if String.uppercase_ascii name = "ALL" then Ast.T_all
  else
    match aggregate_of_name name, peek s with
    | Some agg, Lexer.LPAREN ->
      advance s;
      let attr = ident s in
      expect s Lexer.RPAREN;
      Ast.T_agg (agg, attr)
    | _ -> Ast.T_attr name

let target_list s =
  expect s Lexer.LPAREN;
  let rec items acc =
    let item = target_item s in
    match peek s with
    | Lexer.COMMA ->
      advance s;
      items (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  let targets = items [] in
  expect s Lexer.RPAREN;
  targets

(* --- modifiers ------------------------------------------------------- *)

let arith_of_op = function
  | "+" -> Some Abdm.Modifier.Add
  | "-" -> Some Abdm.Modifier.Sub
  | "*" -> Some Abdm.Modifier.Mul
  | "/" -> Some Abdm.Modifier.Div
  | _ -> None

let modifier s =
  let attr = ident s in
  expect s (Lexer.OP "=");
  (* Arithmetic form needs two tokens of lookahead: the attribute's own
     name followed by an arithmetic operator ("salary = salary + 100");
     any other identifier is a bare string constant. *)
  match s.toks with
  | Lexer.IDENT name :: Lexer.OP op_text :: _
    when String.equal name attr && arith_of_op op_text <> None ->
    advance s;
    advance s;
    let op =
      match arith_of_op op_text with
      | Some op -> op
      | None -> assert false
    in
    let v = literal s in
    Abdm.Modifier.Set_arith (attr, op, v)
  | _ -> Abdm.Modifier.Set_const (attr, literal s)

let modifier_list s =
  expect s Lexer.LPAREN;
  let rec items acc =
    let item = modifier s in
    match peek s with
    | Lexer.COMMA ->
      advance s;
      items (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  let modifiers = items [] in
  expect s Lexer.RPAREN;
  modifiers

(* --- requests -------------------------------------------------------- *)

let insert_keyword s =
  expect s (Lexer.OP "<");
  let attr = ident s in
  expect s Lexer.COMMA;
  let v = literal s in
  expect s (Lexer.OP ">");
  Abdm.Keyword.make attr v

let insert_body s =
  expect s Lexer.LPAREN;
  let rec items acc =
    let item = insert_keyword s in
    match peek s with
    | Lexer.COMMA ->
      advance s;
      items (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  let keywords = items [] in
  expect s Lexer.RPAREN;
  Abdm.Record.make keywords

let by_clause s =
  if keyword_is (peek s) "BY" then begin
    advance s;
    Some (ident s)
  end
  else None

let request_of_stream s =
  let verb = ident s in
  match String.uppercase_ascii verb with
  | "INSERT" -> Ast.Insert (insert_body s)
  | "DELETE" -> Ast.Delete (qualification s)
  | "UPDATE" ->
    let query = qualification s in
    let modifiers = modifier_list s in
    Ast.Update (query, modifiers)
  | "RETRIEVE" ->
    let query = qualification s in
    let targets = target_list s in
    let by = by_clause s in
    Ast.Retrieve { query; targets; by }
  | "RETRIEVE_COMMON" | "RETRIEVE_COMMON_ON" ->
    let rc_left = qualification s in
    expect s Lexer.LPAREN;
    let rc_left_attr = ident s in
    expect s Lexer.RPAREN;
    begin
      match next s with
      | Lexer.IDENT kw when String.uppercase_ascii kw = "AND" -> ()
      | tok -> fail "RETRIEVE_COMMON: expected AND, got %s" (Lexer.token_to_string tok)
    end;
    let rc_right = qualification s in
    expect s Lexer.LPAREN;
    let rc_right_attr = ident s in
    expect s Lexer.RPAREN;
    let rc_targets =
      match peek s with
      | Lexer.LPAREN -> target_list s
      | _ -> [ Ast.T_all ]
    in
    Ast.Retrieve_common { rc_left; rc_left_attr; rc_right; rc_right_attr; rc_targets }
  | other -> fail "unknown ABDL operation %S" other

let wrap_lex f src =
  match f src with
  | result -> result
  | exception Lexer.Lex_error msg -> raise (Parse_error msg)

let request src =
  let run src =
    let s = { toks = Lexer.tokens src } in
    let r = request_of_stream s in
    begin
      match peek s with
      | Lexer.EOF | Lexer.SEMI -> ()
      | tok -> fail "trailing input: %s" (Lexer.token_to_string tok)
    end;
    r
  in
  wrap_lex run src

let transaction src =
  let run src =
    let s = { toks = Lexer.tokens src } in
    let rec loop acc =
      match peek s with
      | Lexer.EOF -> List.rev acc
      | Lexer.SEMI ->
        advance s;
        loop acc
      | _ -> loop (request_of_stream s :: acc)
    in
    loop []
  in
  wrap_lex run src

let query src =
  let run src =
    let s = { toks = Lexer.tokens src } in
    let q = to_dnf (bool_expr s) in
    begin
      match peek s with
      | Lexer.EOF -> ()
      | tok -> fail "trailing input: %s" (Lexer.token_to_string tok)
    end;
    q
  in
  wrap_lex run src
