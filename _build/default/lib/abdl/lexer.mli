(** Hand-written lexer for the textual ABDL surface syntax. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string  (** single-quoted literal, quotes stripped *)
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | OP of string  (** [= <> < <= > >= + - * /] *)
  | EOF

exception Lex_error of string

(** [tokens src] lexes the whole input. Raises [Lex_error] on an
    unterminated string or an unexpected character. *)
val tokens : string -> token list

val token_to_string : token -> string
