(** Recursive-descent parser for textual ABDL requests.

    Accepted surface syntax (keywords case-insensitive):
    {v
    RETRIEVE ((FILE = course) AND (title = 'DB')) (title, credits) BY course
    RETRIEVE ((FILE = employee)) (AVG(salary)) BY dept
    INSERT (<FILE, course>, <title, 'DB'>, <credits, 3>)
    DELETE ((FILE = course) AND (credits < 3))
    UPDATE ((FILE = employee) AND (name = 'x')) (salary = salary + 100)
    v}
    Boolean qualifications may nest AND/OR freely; they are normalised to
    the disjunctive normal form of the kernel model. *)

exception Parse_error of string

(** [request src] parses a single ABDL request. *)
val request : string -> Ast.request

(** [transaction src] parses requests separated by [;] (trailing [;]
    allowed). *)
val transaction : string -> Ast.transaction

(** [query src] parses a bare qualification, e.g.
    ["(FILE = course) AND (credits >= 3)"]. *)
val query : string -> Abdm.Query.t
