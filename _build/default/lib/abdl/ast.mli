(** Abstract syntax of the attribute-based data language (ABDL), the kernel
    data language of MLDS (paper §II.C.2). Four operations are used by the
    language interfaces: INSERT, DELETE, UPDATE, RETRIEVE; a transaction
    groups two or more sequentially executed requests. *)

type aggregate =
  | Count
  | Sum
  | Avg
  | Min
  | Max

type target_item =
  | T_all  (** [(ALL)] — every attribute of each retrieved record *)
  | T_attr of string
  | T_agg of aggregate * string

type request =
  | Insert of Abdm.Record.t
  | Delete of Abdm.Query.t
  | Update of Abdm.Query.t * Abdm.Modifier.t list
  | Retrieve of retrieve
  | Retrieve_common of retrieve_common
      (** the fifth ABDL operation (paper §II.C.2): an equi-join of two
          qualified record sets on a common attribute pair *)

and retrieve = {
  query : Abdm.Query.t;
  targets : target_item list;
  by : string option;  (** group (with aggregates) or sort (without) *)
}

and retrieve_common = {
  rc_left : Abdm.Query.t;
  rc_left_attr : string;
  rc_right : Abdm.Query.t;
  rc_right_attr : string;
  rc_targets : target_item list;
      (** projected over the merged record; colliding right-hand attribute
          names are disambiguated as [file.attr] *)
}

type transaction = request list

val retrieve : ?by:string -> Abdm.Query.t -> target_item list -> request

(** [has_aggregate targets] — does any target apply an aggregate? *)
val has_aggregate : target_item list -> bool

val aggregate_to_string : aggregate -> string

val target_to_string : target_item -> string

(** Renders a request in the paper's surface syntax, e.g.
    [RETRIEVE ((FILE = course) AND (title = 'DB')) (title, credits) BY course]. *)
val to_string : request -> string

val pp : Format.formatter -> request -> unit
