(** Mergeable aggregate states. The MBDS backends each compute a partial
    state over their record partition; the controller merges partials and
    finalises — which is what makes COUNT/SUM/AVG/MIN/MAX distribute
    correctly across backends. *)

type state

val empty : state

(** [add state v] folds one attribute value in. [Null] values are ignored;
    strings participate in COUNT/MIN/MAX only. *)
val add : state -> Abdm.Value.t -> state

val merge : state -> state -> state

(** [finalize agg state] extracts the aggregate's answer. An empty state
    yields [Int 0] for COUNT and [Null] for the others. *)
val finalize : Ast.aggregate -> state -> Abdm.Value.t
