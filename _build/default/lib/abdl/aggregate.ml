type state = {
  count : int;
  sum : float;
  ints_only : bool;  (* every summed value was an Int: keep SUM integral *)
  numeric_count : int;
  min : Abdm.Value.t option;
  max : Abdm.Value.t option;
}

let empty =
  { count = 0; sum = 0.; ints_only = true; numeric_count = 0; min = None; max = None }

let merge_extreme keep a b =
  match a, b with
  | None, x | x, None -> x
  | Some va, Some vb -> Some (if keep (Abdm.Value.compare va vb) then va else vb)

let add state (v : Abdm.Value.t) =
  match v with
  | Abdm.Value.Null -> state
  | _ ->
    let numeric =
      match v with
      | Abdm.Value.Int i -> Some (float_of_int i, true)
      | Abdm.Value.Float f -> Some (f, false)
      | Abdm.Value.Str _ | Abdm.Value.Null -> None
    in
    let state =
      match numeric with
      | Some (x, is_int) ->
        {
          state with
          sum = state.sum +. x;
          ints_only = state.ints_only && is_int;
          numeric_count = state.numeric_count + 1;
        }
      | None -> state
    in
    {
      state with
      count = state.count + 1;
      min = merge_extreme (fun c -> c <= 0) state.min (Some v);
      max = merge_extreme (fun c -> c >= 0) state.max (Some v);
    }

let merge a b =
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    ints_only = a.ints_only && b.ints_only;
    numeric_count = a.numeric_count + b.numeric_count;
    min = merge_extreme (fun c -> c <= 0) a.min b.min;
    max = merge_extreme (fun c -> c >= 0) a.max b.max;
  }

let finalize (agg : Ast.aggregate) state =
  match agg with
  | Ast.Count -> Abdm.Value.Int state.count
  | Ast.Sum ->
    if state.numeric_count = 0 then Abdm.Value.Null
    else if state.ints_only then Abdm.Value.Int (int_of_float state.sum)
    else Abdm.Value.Float state.sum
  | Ast.Avg ->
    if state.numeric_count = 0 then Abdm.Value.Null
    else Abdm.Value.Float (state.sum /. float_of_int state.numeric_count)
  | Ast.Min ->
    begin
      match state.min with
      | Some v -> v
      | None -> Abdm.Value.Null
    end
  | Ast.Max ->
    match state.max with
    | Some v -> v
    | None -> Abdm.Value.Null
