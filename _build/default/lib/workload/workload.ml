module Rng = struct
  (* SplitMix64-style mixing; deterministic across platforms *)
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0
end

type distribution =
  | Uniform of int
  | Zipf of int * float
  | Sequential

type spec = {
  file : string;
  records : int;
  int_attrs : (string * distribution) list;
  str_attrs : (string * int) list;
}

(* Inverse-CDF sampling of a (finite) zipf distribution. *)
let zipf_sampler n s =
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  fun u ->
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then search (mid + 1) hi else search lo mid
    in
    search 0 (n - 1)

let records ~seed spec =
  let rng = Rng.create seed in
  let zipf_samplers =
    List.filter_map
      (fun (attr, dist) ->
        match dist with
        | Zipf (n, s) -> Some (attr, zipf_sampler n s)
        | Uniform _ | Sequential -> None)
      spec.int_attrs
  in
  List.init spec.records (fun i ->
      let int_keywords =
        List.map
          (fun (attr, dist) ->
            let v =
              match dist with
              | Uniform n -> Rng.int rng n
              | Sequential -> i
              | Zipf _ -> (List.assoc attr zipf_samplers) (Rng.float rng)
            in
            Abdm.Keyword.make attr (Abdm.Value.Int v))
          spec.int_attrs
      in
      let str_keywords =
        List.map
          (fun (attr, cardinality) ->
            Abdm.Keyword.make attr
              (Abdm.Value.Str
                 (Printf.sprintf "%s_%d" attr (Rng.int rng (max 1 cardinality)))))
          spec.str_attrs
      in
      Abdm.Record.make (Abdm.Keyword.file spec.file :: int_keywords @ str_keywords))

let populate ~seed spec insert =
  let generated = records ~seed spec in
  List.iter (fun r -> ignore (insert r)) generated;
  List.length generated

let range_probe spec ~attr ~selectivity =
  let threshold =
    spec.records - int_of_float (selectivity *. float_of_int spec.records) - 1
  in
  Abdl.Ast.retrieve
    (Abdm.Query.conj
       [
         Abdm.Predicate.file_eq spec.file;
         Abdm.Predicate.make attr Abdm.Predicate.Gt (Abdm.Value.Int threshold);
       ])
    [ Abdl.Ast.T_attr attr ]
