(** Synthetic workload generation for the benchmark harness and stress
    tests: deterministic (seeded) record populations with controllable
    value distributions, and query probes with a chosen selectivity.

    The MBDS performance claims (§I.B.2) hold "while maintaining ... the
    size of the responses to the transactions at a constant level"; the
    selectivity knob lets E11 probe exactly where growing responses erode
    the reciprocal speedup. *)

type distribution =
  | Uniform of int  (** values drawn uniformly from [0, n) *)
  | Zipf of int * float  (** [Zipf (n, s)] — rank-frequency skew [s] over [n] values *)
  | Sequential  (** value = record index *)

type spec = {
  file : string;
  records : int;
  int_attrs : (string * distribution) list;
  str_attrs : (string * int) list;
      (** (attribute, cardinality): values ["<attr>_0" ... "<attr>_{c-1}"],
          uniform *)
}

(** [records ~seed spec] — the generated population, deterministic in
    [seed]. *)
val records : seed:int -> spec -> Abdm.Record.t list

(** [populate ~seed spec kernel_insert] feeds the population through an
    insert function; returns how many records were inserted. *)
val populate : seed:int -> spec -> (Abdm.Record.t -> int) -> int

(** [range_probe spec ~attr ~selectivity] — a RETRIEVE whose range
    predicate matches about [selectivity] of a [Sequential] attribute's
    records (forcing a scan, like the paper's workloads). *)
val range_probe : spec -> attr:string -> selectivity:float -> Abdl.Ast.request

(** A simple deterministic PRNG (SplitMix-style), exposed for tests. *)
module Rng : sig
  type t

  val create : int -> t

  (** [int t bound] — uniform in [0, bound). *)
  val int : t -> int -> int

  (** [float t] — uniform in [0, 1). *)
  val float : t -> float
end
