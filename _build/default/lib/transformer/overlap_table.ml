type t = {
  schema : Daplex.Schema.t;
  pairs : (string * string) list;  (* declared overlaps, both orders *)
}

let of_schema schema =
  let expand (ov : Daplex.Types.overlap) =
    List.concat_map
      (fun a -> List.concat_map (fun b -> [ a, b; b, a ]) ov.ov_right)
      ov.ov_left
  in
  { schema; pairs = List.concat_map expand schema.Daplex.Schema.overlaps }

let related schema a b =
  let ancestors = Daplex.Schema.ancestors schema in
  List.mem b (ancestors a) || List.mem a (ancestors b)

let share_ancestor schema a b =
  let ancestors_of x = x :: Daplex.Schema.ancestors schema x in
  List.exists (fun anc -> List.mem anc (ancestors_of b)) (ancestors_of a)

let allowed t a b =
  String.equal a b
  || related t.schema a b
  || (not (share_ancestor t.schema a b))
  || List.mem (a, b) t.pairs

let declared_pairs t = t.pairs

let to_string t =
  match t.pairs with
  | [] -> "(no overlap constraints)"
  | pairs ->
    pairs
    |> List.filter (fun (a, b) -> String.compare a b <= 0)
    |> List.map (fun (a, b) -> Printf.sprintf "%s ~ %s" a b)
    |> String.concat "\n"
