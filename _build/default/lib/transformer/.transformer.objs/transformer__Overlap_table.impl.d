lib/transformer/overlap_table.ml: Daplex List Printf String
