lib/transformer/overlap_table.mli: Daplex
