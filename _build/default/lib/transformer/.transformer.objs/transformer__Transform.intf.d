lib/transformer/transform.mli: Daplex Network Overlap_table
