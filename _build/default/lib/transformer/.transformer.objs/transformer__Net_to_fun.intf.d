lib/transformer/net_to_fun.mli: Network Transform
