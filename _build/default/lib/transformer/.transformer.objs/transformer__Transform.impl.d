lib/transformer/transform.ml: Daplex Hashtbl List Network Overlap_table Printf String
