lib/transformer/net_to_fun.ml: Daplex List Network Overlap_table String Transform
