(** The schema transformer of the Direct Language Interface strategy
    (§III.B.2): maps a functional (Daplex) schema into a network schema,
    implementing the six transformations of Chapter V —

    - entity types → record types + SYSTEM-owned sets (AUTOMATIC/FIXED);
    - entity subtypes → record types + ISA sets named
      [supertype_subtype] (AUTOMATIC/FIXED);
    - non-entity types → network item types (string→CHARACTER,
      integer→FIXED, float→FLOAT, enumeration→CHARACTER sized to the
      longest member);
    - scalar functions → items; scalar multi-valued functions → items with
      DUPLICATES NOT ALLOWED;
    - single-valued functions → sets named after the function, owned by
      the {e range} record type, member the {e domain} record type
      (MANUAL/OPTIONAL);
    - multi-valued functions → one-to-many sets owned by the {e domain}
      record type, or — when the range type declares a multi-valued
      function back — a [LINK_X] record type plus two sets
      (MANUAL/OPTIONAL);
    - uniqueness constraints → DUPLICATES ARE NOT ALLOWED clauses;
    - overlap constraints → the {!Overlap_table}.

    All sets select BY APPLICATION. *)

(** Why a set exists — the annotation the Chapter VI DML translation
    switches on when the target is an AB(functional) database. *)
type set_origin =
  | O_system  (** SYSTEM-owned set of a top-level entity type *)
  | O_isa  (** ISA set between supertype and subtype *)
  | O_function_member of string
      (** Daplex function (named) declared on the {e member} record type —
          single-valued functions *)
  | O_function_owner of string
      (** Daplex function declared on the {e owner} record type —
          one-to-many multi-valued functions *)
  | O_link of string
      (** one side of a many-to-many pair; the [LINK_X] record is the
          member (payload names the Daplex function) *)

(** A many-to-many junction record. *)
type link = {
  link_record : string;  (** LINK_X *)
  link_side_a : string * string;  (** function name, its declaring type *)
  link_side_b : string * string;
  link_set_a : string;  (** set name of side A (collision-resolved) *)
  link_set_b : string;
}

type t = {
  net : Network.Schema.t;
  origins : (string * set_origin) list;  (** set name → origin *)
  links : link list;
  overlap : Overlap_table.t;
  source : Daplex.Schema.t;
}

(** [transform schema] runs the Chapter V algorithm. Raises
    [Invalid_argument] on an invalid source schema. *)
val transform : Daplex.Schema.t -> t

val origin_of_set : t -> string -> set_origin option

(** [set_of_function t ~type_name ~fn] — the set transformed from function
    [fn] declared on [type_name] (accounting for collision-renamed sets):
    the set whose origin names [fn] and whose member (single-valued) or
    owner (multi-valued / link) is [type_name]. *)
val set_of_function :
  t -> type_name:string -> fn:string -> Network.Types.set_type option

(** [isa_sets_of_member t record] — the ISA sets in which [record] is the
    member (one per declared supertype). *)
val isa_sets_of_member : t -> string -> Network.Types.set_type list

(** [system_set_of t record] — the SYSTEM-owned set of a top-level entity
    record type, if it is one. *)
val system_set_of : t -> string -> Network.Types.set_type option

val origin_to_string : set_origin -> string
