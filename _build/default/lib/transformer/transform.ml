type set_origin =
  | O_system
  | O_isa
  | O_function_member of string
  | O_function_owner of string
  | O_link of string

type link = {
  link_record : string;
  link_side_a : string * string;
  link_side_b : string * string;
  link_set_a : string;
  link_set_b : string;
}

type t = {
  net : Network.Schema.t;
  origins : (string * set_origin) list;
  links : link list;
  overlap : Overlap_table.t;
  source : Daplex.Schema.t;
}

(* Non-entity type mapping of §V.C. *)
let attr_of_scalar name (kind : Daplex.Types.scalar_kind) length values =
  let longest vs =
    List.fold_left (fun acc v -> max acc (String.length v)) 0 vs
  in
  match kind with
  | Daplex.Types.K_string -> Network.Types.attribute ~length name Network.Types.A_string
  | Daplex.Types.K_int -> Network.Types.attribute name Network.Types.A_int
  | Daplex.Types.K_float -> Network.Types.attribute name Network.Types.A_float
  | Daplex.Types.K_enum ->
    Network.Types.attribute ~length:(max length (longest values)) name
      Network.Types.A_string
  | Daplex.Types.K_bool ->
    Network.Types.attribute ~length:5 name Network.Types.A_string

(* Items of a record type: scalar functions become attributes; scalar
   multi-valued functions become attributes that cannot have duplicates
   (§V.A). *)
let attributes_of_type schema tref =
  List.filter_map
    (fun (fn : Daplex.Types.function_decl) ->
      match Daplex.Schema.classify schema fn with
      | Daplex.Schema.C_scalar ->
        begin
          match Daplex.Schema.resolve_range schema fn.fn_range with
          | Daplex.Schema.Rs_scalar { kind; length; values } ->
            Some (attr_of_scalar fn.fn_name kind length values)
          | Daplex.Schema.Rs_entity _ -> None
        end
      | Daplex.Schema.C_scalar_multi ->
        begin
          match Daplex.Schema.resolve_range schema fn.fn_range with
          | Daplex.Schema.Rs_scalar { kind; length; values } ->
            Some
              { (attr_of_scalar fn.fn_name kind length values) with
                Network.Types.attr_dup_allowed = false }
          | Daplex.Schema.Rs_entity _ -> None
        end
      | Daplex.Schema.C_single_valued _ | Daplex.Schema.C_multi_valued _ ->
        None)
    (Daplex.Schema.functions_of tref)

let make_set ?(insertion = Network.Types.Ins_manual)
    ?(retention = Network.Types.Ret_optional) name owner member =
  {
    Network.Types.set_name = name;
    set_owner = owner;
    set_member = member;
    set_insertion = insertion;
    set_retention = retention;
    set_selection = Network.Types.Sel_by_application;
  }

let transform schema =
  begin
    match Daplex.Schema.validate schema with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Transform.transform: " ^ msg)
  end;
  let records = ref [] (* reversed *) in
  let sets = ref [] (* reversed, with origins *) in
  let links = ref [] in
  let link_counter = ref 0 in
  let used_set_names = Hashtbl.create 32 in
  let fresh_set_name base =
    if not (Hashtbl.mem used_set_names base) then begin
      Hashtbl.add used_set_names base ();
      base
    end
    else
      let rec next i =
        let candidate = Printf.sprintf "%s_%d" base i in
        if Hashtbl.mem used_set_names candidate then next (i + 1)
        else begin
          Hashtbl.add used_set_names candidate ();
          candidate
        end
      in
      next 2
  in
  let add_set set origin = sets := (set, origin) :: !sets in
  let add_record rec_t = records := rec_t :: !records in

  (* Entity types: record + SYSTEM set (§V.A). *)
  let do_entity (e : Daplex.Types.entity) =
    add_record
      {
        Network.Types.rec_name = e.ent_name;
        rec_attributes = attributes_of_type schema (Daplex.Schema.Entity e);
      };
    let set_name =
      fresh_set_name
        (Printf.sprintf "%s_%s"
           (String.lowercase_ascii Network.Schema.system_owner)
           e.ent_name)
    in
    add_set
      (make_set ~insertion:Network.Types.Ins_automatic
         ~retention:Network.Types.Ret_fixed set_name
         Network.Schema.system_owner e.ent_name)
      O_system
  in
  (* Entity subtypes: record + one ISA set per supertype (§V.B). *)
  let do_subtype (s : Daplex.Types.subtype) =
    add_record
      {
        Network.Types.rec_name = s.sub_name;
        rec_attributes = attributes_of_type schema (Daplex.Schema.Subtype s);
      };
    List.iter
      (fun supertype ->
        let set_name =
          fresh_set_name (Printf.sprintf "%s_%s" supertype s.sub_name)
        in
        add_set
          (make_set ~insertion:Network.Types.Ins_automatic
             ~retention:Network.Types.Ret_fixed set_name supertype s.sub_name)
          O_isa)
      s.sub_supertypes
  in
  List.iter do_entity schema.Daplex.Schema.entities;
  List.iter do_subtype schema.Daplex.Schema.subtypes;

  (* Entity-valued functions (§V.A): processed after all record types
     exist. Many-to-many pairs are detected once, in declaration order. *)
  let m2m_done = Hashtbl.create 8 in
  let find_back_function domain range =
    (* a multi-valued function on [range] whose range is [domain] *)
    match Daplex.Schema.find_type schema range with
    | None -> None
    | Some tref ->
      List.find_opt
        (fun (fn : Daplex.Types.function_decl) ->
          match Daplex.Schema.classify schema fn with
          | Daplex.Schema.C_multi_valued target -> String.equal target domain
          | Daplex.Schema.C_scalar | Daplex.Schema.C_scalar_multi
          | Daplex.Schema.C_single_valued _ -> false)
        (Daplex.Schema.functions_of tref)
  in
  let do_functions tref =
    let domain = Daplex.Schema.type_name tref in
    List.iter
      (fun (fn : Daplex.Types.function_decl) ->
        match Daplex.Schema.classify schema fn with
        | Daplex.Schema.C_scalar | Daplex.Schema.C_scalar_multi -> ()
        | Daplex.Schema.C_single_valued range ->
          (* Owner is the record of the range type, member the domain's
             record; the set bears the function's name. *)
          let set_name = fresh_set_name fn.fn_name in
          add_set (make_set set_name range domain) (O_function_member fn.fn_name)
        | Daplex.Schema.C_multi_valued range ->
          if Hashtbl.mem m2m_done (domain, fn.fn_name) then ()
          else begin
            match find_back_function domain range with
            | Some back ->
              (* many-to-many: LINK_X record + two sets *)
              incr link_counter;
              let link_name = Printf.sprintf "LINK_%d" !link_counter in
              add_record
                { Network.Types.rec_name = link_name; rec_attributes = [] };
              let set_a = fresh_set_name fn.fn_name in
              let set_b = fresh_set_name back.fn_name in
              add_set (make_set set_a domain link_name) (O_link fn.fn_name);
              add_set (make_set set_b range link_name) (O_link back.fn_name);
              links :=
                {
                  link_record = link_name;
                  link_side_a = fn.fn_name, domain;
                  link_side_b = back.fn_name, range;
                  link_set_a = set_a;
                  link_set_b = set_b;
                }
                :: !links;
              Hashtbl.add m2m_done (domain, fn.fn_name) ();
              Hashtbl.add m2m_done (range, back.fn_name) ()
            | None ->
              (* one-to-many: owner is the domain, member the range *)
              let set_name = fresh_set_name fn.fn_name in
              add_set (make_set set_name domain range)
                (O_function_owner fn.fn_name)
          end)
      (Daplex.Schema.functions_of tref)
  in
  List.iter (fun e -> do_functions (Daplex.Schema.Entity e))
    schema.Daplex.Schema.entities;
  List.iter (fun s -> do_functions (Daplex.Schema.Subtype s))
    schema.Daplex.Schema.subtypes;

  let net =
    Network.Schema.make ~name:schema.Daplex.Schema.name
      ~records:(List.rev !records)
      ~sets:(List.rev_map fst !sets)
  in
  (* Uniqueness constraints → DUPLICATES ARE NOT ALLOWED (§V.D). *)
  let net =
    List.fold_left
      (fun net (u : Daplex.Types.uniqueness) ->
        Network.Schema.set_dup_flag net ~record:u.uniq_within
          ~items:u.uniq_functions)
      net schema.Daplex.Schema.uniqueness
  in
  begin
    match Network.Schema.validate net with
    | Ok () -> ()
    | Error msg ->
      invalid_arg ("Transform.transform: produced invalid network schema: " ^ msg)
  end;
  {
    net;
    origins = List.rev_map (fun (s, o) -> s.Network.Types.set_name, o) !sets;
    links = List.rev !links;
    overlap = Overlap_table.of_schema schema;
    source = schema;
  }

let origin_of_set t set_name = List.assoc_opt set_name t.origins

let set_of_function t ~type_name ~fn =
  List.find_opt
    (fun (s : Network.Types.set_type) ->
      match origin_of_set t s.set_name with
      | Some (O_function_member name) ->
        String.equal name fn && String.equal s.set_member type_name
      | Some (O_function_owner name) | Some (O_link name) ->
        String.equal name fn && String.equal s.set_owner type_name
      | Some O_system | Some O_isa | None -> false)
    t.net.Network.Schema.sets

let isa_sets_of_member t record =
  List.filter
    (fun (s : Network.Types.set_type) ->
      String.equal s.set_member record
      && origin_of_set t s.set_name = Some O_isa)
    t.net.Network.Schema.sets

let system_set_of t record =
  List.find_opt
    (fun (s : Network.Types.set_type) ->
      String.equal s.set_member record
      && origin_of_set t s.set_name = Some O_system)
    t.net.Network.Schema.sets

let origin_to_string = function
  | O_system -> "SYSTEM set"
  | O_isa -> "ISA set"
  | O_function_member fn -> Printf.sprintf "function %s (member-held)" fn
  | O_function_owner fn -> Printf.sprintf "function %s (owner-held)" fn
  | O_link fn -> Printf.sprintf "function %s (via LINK record)" fn
