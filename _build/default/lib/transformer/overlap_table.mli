(** The Overlap Table of §V.E / §VI.G: which terminal entity subtypes an
    entity may belong to simultaneously. Subtypes sharing an ancestor are
    disjoint unless an OVERLAP constraint pairs them; subtypes related by
    ISA, or from unrelated hierarchies, never conflict. The STORE
    translation consults this table before insertion. *)

type t

val of_schema : Daplex.Schema.t -> t

(** [allowed t a b] — may one entity belong to both subtypes [a] and
    [b]? *)
val allowed : t -> string -> string -> bool

(** Explicitly declared overlap pairs (both orders), for display. *)
val declared_pairs : t -> (string * string) list

val to_string : t -> string
