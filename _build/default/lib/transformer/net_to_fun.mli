(** The reverse schema derivation — network→functional — one more pair in
    the paper's "schema transformers between all model/language pairs"
    vision of §III.B.2.

    Each network record type becomes an entity type: its items become
    scalar functions, and each non-SYSTEM set in which the record is the
    {e member} becomes a single-valued function named after the set,
    ranging over the owner's entity type (CODASYL sets are one-to-many:
    each member knows exactly one owner). ISA structure cannot be inferred
    from a plain network schema, so the derived functional schema has no
    subtypes.

    The result is an ordinary {!Transform.t} whose [net] is the original
    schema and whose set origins are member-held function sets — so the
    Daplex engine runs unchanged against the AB(network) kernel image. *)

(** [functional_view schema] — raises [Invalid_argument] if the derived
    functional schema fails validation (e.g. a set name colliding with an
    item name of its member record). *)
val functional_view : Network.Schema.t -> Transform.t
