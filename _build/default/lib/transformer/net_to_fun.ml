let range_of_attr (a : Network.Types.attribute) =
  match a.attr_type with
  | Network.Types.A_int -> Daplex.Types.R_int
  | Network.Types.A_float -> Daplex.Types.R_float
  | Network.Types.A_string -> Daplex.Types.R_string a.attr_length

let functional_view (schema : Network.Schema.t) =
  let non_system_member_sets record =
    List.filter
      (fun (s : Network.Types.set_type) ->
        not (String.equal s.set_owner Network.Schema.system_owner))
      (Network.Schema.sets_with_member schema record)
  in
  let entity_of_record (r : Network.Types.record_type) =
    let scalar_functions =
      List.map
        (fun (a : Network.Types.attribute) ->
          {
            Daplex.Types.fn_name = a.attr_name;
            fn_range = range_of_attr a;
            fn_set = false;
          })
        r.rec_attributes
    in
    let set_functions =
      List.map
        (fun (s : Network.Types.set_type) ->
          {
            Daplex.Types.fn_name = s.set_name;
            fn_range = Daplex.Types.R_named s.set_owner;
            fn_set = false;
          })
        (non_system_member_sets r.rec_name)
    in
    {
      Daplex.Types.ent_name = r.rec_name;
      ent_functions = scalar_functions @ set_functions;
    }
  in
  let source =
    Daplex.Schema.make ~name:schema.Network.Schema.name
      ~entities:(List.map entity_of_record schema.Network.Schema.records)
      ()
  in
  begin
    match Daplex.Schema.validate source with
    | Ok () -> ()
    | Error msg ->
      invalid_arg
        ("Net_to_fun.functional_view: derived functional schema invalid: "
         ^ msg)
  end;
  let origins =
    List.map
      (fun (s : Network.Types.set_type) ->
        if String.equal s.set_owner Network.Schema.system_owner then
          s.set_name, Transform.O_system
        else s.set_name, Transform.O_function_member s.set_name)
      schema.Network.Schema.sets
  in
  {
    Transform.net = schema;
    origins;
    links = [];
    overlap = Overlap_table.of_schema source;
    source;
  }
