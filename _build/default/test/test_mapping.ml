(* Tests for the data-model transformations to ABDM and the instance
   loader: the AB(functional) representation of §III.C (Fig. 3.3). *)

let setup () = Mapping.Loader.university ()

let key keys type_name row_key =
  match Mapping.Loader.find_key keys ~type_name ~row_key with
  | Some k -> k
  | None -> Alcotest.failf "no key for %s/%s" type_name row_key

let select kernel src = Mapping.Kernel.select kernel (Abdl.Parser.query src)

let test_descriptor_files () =
  let transform = Transformer.Transform.transform (Daplex.University.schema ()) in
  let d = Mapping.Ab_schema.descriptor (Mapping.Ab_schema.Fun transform) in
  Alcotest.(check (list string)) "one file per record type"
    [ "person"; "course"; "department"; "employee"; "support_staff";
      "faculty"; "student"; "LINK_1" ]
    (Abdm.Descriptor.file_names d);
  Alcotest.(check (list string)) "student attrs: key, items, refs"
    [ "student"; "major"; "person_student"; "advisor" ]
    (Abdm.Descriptor.attribute_names d "student");
  Alcotest.(check (list string)) "department attrs incl owner-held offers"
    [ "department"; "dname"; "building"; "offers" ]
    (Abdm.Descriptor.attribute_names d "department");
  (* LINK files carry only the two set references *)
  Alcotest.(check (list string)) "link attrs"
    [ "taught_by"; "teaching" ]
    (Abdm.Descriptor.attribute_names d "LINK_1")

let test_primary_records () =
  let kernel, _, keys = setup () in
  let k = key keys "person" "p1" in
  match Mapping.Kernel.get kernel k with
  | None -> Alcotest.fail "p1 missing"
  | Some r ->
    Alcotest.(check bool) "file" true (Abdm.Record.file r = Some "person");
    Alcotest.(check bool) "unique key = dbkey" true
      (Abdm.Record.value_of r "person" = Some (Abdm.Value.Int k));
    Alcotest.(check bool) "name" true
      (Abdm.Record.value_of r "name" = Some (Abdm.Value.Str "Hsiao"))

let test_isa_references () =
  let kernel, _, keys = setup () in
  let e1 = key keys "employee" "e1" in
  let p1 = key keys "person" "p1" in
  match Mapping.Kernel.get kernel e1 with
  | None -> Alcotest.fail "e1 missing"
  | Some r ->
    Alcotest.(check bool) "employee points at person" true
      (Abdm.Record.value_of r "person_employee" = Some (Abdm.Value.Int p1))

let test_single_valued_references () =
  let kernel, _, keys = setup () in
  let st1 = key keys "student" "st1" in
  let f1 = key keys "faculty" "f1" in
  match Mapping.Kernel.get kernel st1 with
  | None -> Alcotest.fail "st1 missing"
  | Some r ->
    Alcotest.(check bool) "advisor ref" true
      (Abdm.Record.value_of r "advisor" = Some (Abdm.Value.Int f1))

let test_scalar_multivalued_duplication () =
  let kernel, _, keys = setup () in
  let e1 = key keys "employee" "e1" in
  (* e1 has two dependents: two AB records share the unique key *)
  let copies = select kernel (Printf.sprintf "(FILE = employee) AND (employee = %d)" e1) in
  Alcotest.(check int) "two copies" 2 (List.length copies);
  let dependents =
    List.filter_map
      (fun (_, r) ->
        match Abdm.Record.value_of r "dependents" with
        | Some (Abdm.Value.Str s) -> Some s
        | _ -> None)
      copies
    |> List.sort compare
  in
  Alcotest.(check (list string)) "both values present" [ "Ann"; "Ben" ] dependents;
  (* an employee without dependents has exactly one record, null-valued *)
  let e2 = key keys "employee" "e2" in
  let e2_copies = select kernel (Printf.sprintf "(FILE = employee) AND (employee = %d)" e2) in
  Alcotest.(check int) "single copy" 1 (List.length e2_copies);
  Alcotest.(check bool) "null dependents" true
    (Abdm.Record.value_of (snd (List.hd e2_copies)) "dependents"
     = Some Abdm.Value.Null)

let test_owner_held_duplication () =
  let kernel, _, keys = setup () in
  let d1 = key keys "department" "d1" in
  (* d1 offers four courses: four owner copies *)
  let copies = select kernel (Printf.sprintf "(FILE = department) AND (department = %d)" d1) in
  Alcotest.(check int) "four copies" 4 (List.length copies);
  let offered =
    List.filter_map
      (fun (_, r) ->
        match Abdm.Record.value_of r "offers" with
        | Some (Abdm.Value.Int k) -> Some k
        | _ -> None)
      copies
    |> List.sort_uniq compare
  in
  let expected =
    List.sort compare
      [ key keys "course" "c1"; key keys "course" "c2";
        key keys "course" "c3"; key keys "course" "c4" ]
  in
  Alcotest.(check (list int)) "offers all four" expected offered

let test_link_records () =
  let kernel, _, keys = setup () in
  let f1 = key keys "faculty" "f1" in
  let links = select kernel (Printf.sprintf "(FILE = LINK_1) AND (teaching = %d)" f1) in
  (* f1 teaches c1, c2, c4 *)
  Alcotest.(check int) "three links" 3 (List.length links);
  let courses =
    List.filter_map
      (fun (_, r) ->
        match Abdm.Record.value_of r "taught_by" with
        | Some (Abdm.Value.Int k) -> Some k
        | _ -> None)
      links
    |> List.sort_uniq compare
  in
  let expected =
    List.sort compare
      [ key keys "course" "c1"; key keys "course" "c2"; key keys "course" "c4" ]
  in
  Alcotest.(check (list int)) "linked courses" expected courses

let test_all_records_validate () =
  let kernel, transform, _ = setup () in
  let d = Mapping.Ab_schema.descriptor (Mapping.Ab_schema.Fun transform) in
  let all = Mapping.Kernel.select kernel Abdm.Query.always in
  Alcotest.(check bool) "non-empty" true (all <> []);
  List.iter
    (fun (k, r) ->
      match Abdm.Descriptor.validate d r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "record %d invalid: %s" k msg)
    all

let test_load_into_mbds_equivalent () =
  let k1, _, _ = Mapping.Loader.university () in
  let k4, _, _ = Mapping.Loader.university ~backends:4 () in
  Alcotest.(check int) "same size" (Mapping.Kernel.size k1) (Mapping.Kernel.size k4);
  let q = Abdl.Parser.query "(FILE = student)" in
  let shape kernel =
    Mapping.Kernel.select kernel q
    |> List.map (fun (k, r) -> k, Abdm.Record.to_string r)
  in
  Alcotest.(check bool) "identical student records" true (shape k1 = shape k4)

let test_entity_key_helper () =
  let r =
    Abdm.Record.make
      [ Abdm.Keyword.file "course"; Abdm.Keyword.make "course" (Abdm.Value.Int 7) ]
  in
  Alcotest.(check int) "uses key attr" 7
    (Mapping.Ab_schema.entity_key "course" r ~dbkey:99);
  let link = Abdm.Record.make [ Abdm.Keyword.file "LINK_1" ] in
  Alcotest.(check int) "falls back to dbkey" 99
    (Mapping.Ab_schema.entity_key "LINK_1" link ~dbkey:99)

let test_loader_bad_reference () =
  let schema = Daplex.University.schema () in
  let transform = Transformer.Transform.transform schema in
  let kernel = Mapping.Kernel.single () in
  let bad_rows =
    [
      {
        Daplex.University.row_type = "student";
        row_key = "s1";
        row_isa = [ "person", "ghost" ];
        row_values = [];
      };
    ]
  in
  Alcotest.(check bool) "unresolved reference rejected" true
    (match Mapping.Loader.load kernel transform bad_rows with
     | exception Invalid_argument _ -> true
     | _ -> false)

let suite =
  [
    "descriptor files", `Quick, test_descriptor_files;
    "primary records", `Quick, test_primary_records;
    "isa references", `Quick, test_isa_references;
    "single-valued references", `Quick, test_single_valued_references;
    "scalar multi-valued duplication", `Quick, test_scalar_multivalued_duplication;
    "owner-held duplication", `Quick, test_owner_held_duplication;
    "link records", `Quick, test_link_records;
    "all records validate", `Quick, test_all_records_validate;
    "single store vs MBDS load", `Quick, test_load_into_mbds_equivalent;
    "entity key helper", `Quick, test_entity_key_helper;
    "loader bad reference", `Quick, test_loader_bad_reference;
  ]

(* --- scaled population ------------------------------------------------------ *)

let test_scaled_load_consistent () =
  let kernel, transform, keys = Mapping.Loader.university ~scale:30 () in
  ignore keys;
  (* 5 replicas of the base population: 30 students, 60 faculty+staff... *)
  let count file = Mapping.Kernel.count kernel file in
  Alcotest.(check int) "30 students" 30 (count "student");
  Alcotest.(check int) "75 persons" 75 (count "person");
  (* references stay within a replica: every student's advisor must share
     the student's replica suffix; just verify referential integrity *)
  let live type_name key =
    Mapping.Kernel.select kernel
      (Abdl.Parser.query
         (Printf.sprintf "(FILE = %s) AND (%s = %d)" type_name type_name key))
    <> []
  in
  Mapping.Kernel.select kernel (Abdl.Parser.query "(FILE = student)")
  |> List.iter (fun (_, r) ->
         match Abdm.Record.value_of r "advisor" with
         | Some (Abdm.Value.Int k) ->
           Alcotest.(check bool) "advisor live" true (live "faculty" k)
         | _ -> Alcotest.fail "student without advisor");
  ignore transform

let test_scaled_daplex_queries () =
  let kernel, transform, _ = Mapping.Loader.university ~scale:18 () in
  let engine = Daplex_dml.Engine.create kernel transform in
  match
    Daplex_dml.Engine.execute engine
      (Daplex_dml.Parser.stmt
         "FOR EACH s IN student SUCH THAT major(s) = 'Computer Science' PRINT name(s) END")
  with
  | Ok (Daplex_dml.Engine.Printed rows) ->
    Alcotest.(check int) "3 CS students per replica x 3" 9 (List.length rows)
  | Ok _ | Error _ -> Alcotest.fail "query failed"

let suite =
  suite
  @ [
      "scaled load consistent", `Quick, test_scaled_load_consistent;
      "scaled daplex queries", `Quick, test_scaled_daplex_queries;
    ]
