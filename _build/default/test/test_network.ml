(* Tests for the network data model: schema, DDL parser, CIT, UWA. *)

let sample_ddl =
  {|SCHEMA NAME IS sample

RECORD NAME IS department
  ITEM dname TYPE IS CHARACTER 20
  ITEM budget TYPE IS FIXED

RECORD NAME IS employee
  ITEM name TYPE IS CHARACTER 25
  ITEM salary TYPE IS FIXED
  ITEM rate TYPE IS FLOAT 8 2
  DUPLICATES ARE NOT ALLOWED FOR name

SET NAME IS system_department
  OWNER IS SYSTEM
  MEMBER IS department
  INSERTION IS AUTOMATIC
  RETENTION IS FIXED
  SET SELECTION IS BY APPLICATION

SET NAME IS works_in
  OWNER IS department
  MEMBER IS employee
  INSERTION IS MANUAL
  RETENTION IS OPTIONAL
  SET SELECTION IS BY APPLICATION
|}

let parse () = Network.Ddl_parser.schema sample_ddl

let test_ddl_parse () =
  let s = parse () in
  Alcotest.(check string) "name" "sample" s.Network.Schema.name;
  Alcotest.(check (list string)) "records" [ "department"; "employee" ]
    (Network.Schema.record_names s);
  Alcotest.(check (list string)) "sets" [ "system_department"; "works_in" ]
    (Network.Schema.set_names s);
  match Network.Schema.find_record s "employee" with
  | None -> Alcotest.fail "employee missing"
  | Some r ->
    let name_attr =
      match Network.Types.find_attribute r "name" with
      | Some a -> a
      | None -> Alcotest.fail "name attr missing"
    in
    Alcotest.(check bool) "dup flag cleared" false name_attr.attr_dup_allowed;
    Alcotest.(check int) "char length" 25 name_attr.attr_length;
    let rate =
      match Network.Types.find_attribute r "rate" with
      | Some a -> a
      | None -> Alcotest.fail "rate attr missing"
    in
    Alcotest.(check bool) "float type" true (rate.attr_type = Network.Types.A_float);
    Alcotest.(check int) "dec length" 2 rate.attr_dec_length

let test_ddl_set_modes () =
  let s = parse () in
  match Network.Schema.find_set s "works_in" with
  | None -> Alcotest.fail "works_in missing"
  | Some set ->
    Alcotest.(check string) "owner" "department" set.set_owner;
    Alcotest.(check string) "member" "employee" set.set_member;
    Alcotest.(check bool) "manual" true (set.set_insertion = Network.Types.Ins_manual);
    Alcotest.(check bool) "optional" true (set.set_retention = Network.Types.Ret_optional);
    Alcotest.(check bool) "by application" true
      (set.set_selection = Network.Types.Sel_by_application)

let test_ddl_roundtrip () =
  let s = parse () in
  let reparsed = Network.Ddl_parser.schema (Network.Schema.to_ddl s) in
  Alcotest.(check string) "ddl stable" (Network.Schema.to_ddl s)
    (Network.Schema.to_ddl reparsed)

let test_ddl_errors () =
  let bad src =
    match Network.Ddl_parser.schema src with
    | exception Network.Ddl_parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing schema name" true (bad "RECORD NAME IS x");
  Alcotest.(check bool) "item outside record" true
    (bad "SCHEMA NAME IS s\nITEM a TYPE IS FIXED");
  Alcotest.(check bool) "set missing member" true
    (bad "SCHEMA NAME IS s\nSET NAME IS w\nOWNER IS SYSTEM");
  Alcotest.(check bool) "unknown member record" true
    (bad
       "SCHEMA NAME IS s\nSET NAME IS w\nOWNER IS SYSTEM\nMEMBER IS ghost");
  (* a record may own a set it is also a member of (paper §II.B) *)
  Alcotest.(check bool) "self-owning set accepted" false
    (bad
       "SCHEMA NAME IS s\nRECORD NAME IS r\nSET NAME IS w\nOWNER IS r\nMEMBER IS r")

let test_schema_queries () =
  let s = parse () in
  Alcotest.(check int) "sets_with_member employee" 1
    (List.length (Network.Schema.sets_with_member s "employee"));
  Alcotest.(check int) "sets_with_owner department" 1
    (List.length (Network.Schema.sets_with_owner s "department"));
  Alcotest.(check bool) "find_set miss" true
    (Network.Schema.find_set s "nope" = None)

(* --- CIT ----------------------------------------------------------------- *)

let entry dbkey record_type = { Network.Currency.cur_dbkey = dbkey; cur_record_type = record_type }

let test_currency_run_unit () =
  let cit = Network.Currency.create () in
  Alcotest.(check bool) "initially null" true (Network.Currency.run_unit cit = None);
  Network.Currency.set_run_unit cit (entry 5 "employee");
  Alcotest.(check bool) "run unit set" true
    (Network.Currency.run_unit cit = Some (entry 5 "employee"));
  Alcotest.(check bool) "record currency set too" true
    (Network.Currency.record_current cit "employee" = Some (entry 5 "employee"))

let test_currency_sets () =
  let cit = Network.Currency.create () in
  Network.Currency.set_set_owner cit "works_in" 3;
  begin
    match Network.Currency.set_current cit "works_in" with
    | Some { cur_owner = Some 3; cur_member = None } -> ()
    | _ -> Alcotest.fail "owner set, member cleared"
  end;
  Network.Currency.set_set_member cit "works_in" (entry 9 "employee");
  begin
    match Network.Currency.set_current cit "works_in" with
    | Some { cur_owner = Some 3; cur_member = Some e } ->
      Alcotest.(check int) "member dbkey" 9 e.cur_dbkey
    | _ -> Alcotest.fail "member recorded"
  end;
  (* changing the owner occurrence clears the member position *)
  Network.Currency.set_set_owner cit "works_in" 4;
  match Network.Currency.set_current cit "works_in" with
  | Some { cur_owner = Some 4; cur_member = None } -> ()
  | _ -> Alcotest.fail "owner change resets member"

let test_currency_forget () =
  let cit = Network.Currency.create () in
  Network.Currency.set_run_unit cit (entry 5 "employee");
  Network.Currency.set_set_owner cit "works_in" 5;
  Network.Currency.set_set_member cit "works_in" (entry 5 "employee");
  Network.Currency.forget_key cit 5;
  Alcotest.(check bool) "run unit nulled" true (Network.Currency.run_unit cit = None);
  Alcotest.(check bool) "record currency nulled" true
    (Network.Currency.record_current cit "employee" = None);
  match Network.Currency.set_current cit "works_in" with
  | Some { cur_owner = None; cur_member = None } -> ()
  | _ -> Alcotest.fail "set indicators nulled"

let test_currency_to_string () =
  let cit = Network.Currency.create () in
  Network.Currency.set_run_unit cit (entry 7 "course");
  let text = Network.Currency.to_string cit in
  Alcotest.(check bool) "mentions run-unit" true
    (Daplex.Str_search.find text "course@7" <> None)

(* --- UWA ------------------------------------------------------------------ *)

let test_uwa () =
  let uwa = Network.Uwa.create () in
  Network.Uwa.move uwa ~record:"course" ~item:"title" (Abdm.Value.Str "DB");
  Network.Uwa.move uwa ~record:"course" ~item:"credits" (Abdm.Value.Int 4);
  Alcotest.(check bool) "get" true
    (Network.Uwa.get uwa ~record:"course" ~item:"title" = Some (Abdm.Value.Str "DB"));
  Network.Uwa.move uwa ~record:"course" ~item:"title" (Abdm.Value.Str "OS");
  Alcotest.(check bool) "overwrite" true
    (Network.Uwa.get uwa ~record:"course" ~item:"title" = Some (Abdm.Value.Str "OS"));
  Alcotest.(check int) "template size" 2
    (List.length (Network.Uwa.template uwa ~record:"course"));
  Network.Uwa.load uwa ~record:"course" [ "title", Abdm.Value.Str "X" ];
  Alcotest.(check int) "load replaces template" 1
    (List.length (Network.Uwa.template uwa ~record:"course"));
  Network.Uwa.clear_record uwa ~record:"course";
  Alcotest.(check (list (pair string (Alcotest.testable Abdm.Value.pp Abdm.Value.equal))))
    "cleared" []
    (Network.Uwa.template uwa ~record:"course")

let suite =
  [
    "ddl parse", `Quick, test_ddl_parse;
    "ddl set modes", `Quick, test_ddl_set_modes;
    "ddl roundtrip", `Quick, test_ddl_roundtrip;
    "ddl errors", `Quick, test_ddl_errors;
    "schema queries", `Quick, test_schema_queries;
    "currency run unit", `Quick, test_currency_run_unit;
    "currency sets", `Quick, test_currency_sets;
    "currency forget", `Quick, test_currency_forget;
    "currency to_string", `Quick, test_currency_to_string;
    "uwa", `Quick, test_uwa;
  ]

let test_record_current_direct () =
  let cit = Network.Currency.create () in
  Network.Currency.set_record_current cit (entry 3 "course");
  Alcotest.(check bool) "record currency without run-unit" true
    (Network.Currency.record_current cit "course" = Some (entry 3 "course"));
  Alcotest.(check bool) "run-unit untouched" true
    (Network.Currency.run_unit cit = None);
  Network.Currency.clear cit;
  Alcotest.(check bool) "clear drops record currency" true
    (Network.Currency.record_current cit "course" = None)

let suite = suite @ [ "record currency direct", `Quick, test_record_current_direct ]
