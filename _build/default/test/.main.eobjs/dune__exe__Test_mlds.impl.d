test/test_mlds.ml: Abdm Alcotest Daplex Filename List Mlds Result Sys
