test/test_mbds.ml: Abdl Abdm Alcotest Fun List Mbds Printf QCheck2 QCheck_alcotest
