test/test_kernel.ml: Abdl Abdm Alcotest List Mapping Mbds
