test/test_abdm.ml: Abdm Alcotest List Modifier Predicate Printf QCheck2 QCheck_alcotest Query Record Result Stdlib Value
