test/test_codasyl_network.ml: Abdm Alcotest Codasyl_dml Daplex List Mapping Network
