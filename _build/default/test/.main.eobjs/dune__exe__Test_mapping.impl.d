test/test_mapping.ml: Abdl Abdm Alcotest Daplex Daplex_dml List Mapping Printf Transformer
