test/test_hierarchical.ml: Abdm Alcotest Daplex Hierarchical List Mapping
