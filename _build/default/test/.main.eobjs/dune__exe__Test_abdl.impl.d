test/test_abdl.ml: Abdl Abdm Alcotest List Mbds Printf QCheck2 QCheck_alcotest String
