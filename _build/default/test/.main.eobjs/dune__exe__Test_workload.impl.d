test/test_workload.ml: Abdl Abdm Alcotest List Printf Workload
