test/test_codasyl_dml.ml: Abdl Abdm Alcotest Array Codasyl_dml Daplex List Mapping Network Printf QCheck2 QCheck_alcotest Transformer
