test/test_daplex_dml.ml: Abdm Alcotest Daplex Daplex_dml List Mapping Printf Transformer
