test/test_daplex.ml: Alcotest Daplex List String
