test/main.mli:
