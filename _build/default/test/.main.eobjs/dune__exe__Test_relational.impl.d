test/test_relational.ml: Abdl Abdm Alcotest Daplex List Mapping Relational Result
