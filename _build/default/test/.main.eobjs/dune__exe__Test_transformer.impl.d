test/test_transformer.ml: Alcotest Daplex List Network Printf QCheck2 QCheck_alcotest String Transformer
