test/test_network.ml: Abdm Alcotest Daplex List Network
