(* Tests for the CODASYL-DML language interface: parser, and the Chapter VI
   statement translations executed against the AB(functional) University
   database. *)

let fresh_session ?backends () =
  let kernel, transform, keys = Mapping.Loader.university ?backends () in
  let session =
    Codasyl_dml.Session.create kernel (Mapping.Ab_schema.Fun transform)
  in
  session, keys

let key keys type_name row_key =
  match Mapping.Loader.find_key keys ~type_name ~row_key with
  | Some k -> k
  | None -> Alcotest.failf "no key for %s/%s" type_name row_key

let exec session src =
  Codasyl_dml.Engine.execute session (Codasyl_dml.Parser.stmt src)

let expect_found session src =
  match exec session src with
  | Ok (Codasyl_dml.Engine.Found f) -> f.dbkey
  | Ok o -> Alcotest.failf "%s: expected Found, got %s" src (Codasyl_dml.Engine.outcome_to_string o)
  | Error msg -> Alcotest.failf "%s: %s" src msg

let expect_eos session src =
  match exec session src with
  | Ok Codasyl_dml.Engine.End_of_set -> ()
  | Ok o -> Alcotest.failf "%s: expected end of set, got %s" src (Codasyl_dml.Engine.outcome_to_string o)
  | Error msg -> Alcotest.failf "%s: %s" src msg

let expect_ok session src =
  match exec session src with
  | Ok o -> o
  | Error msg -> Alcotest.failf "%s: %s" src msg

let expect_error session src =
  match exec session src with
  | Ok o -> Alcotest.failf "%s: expected error, got %s" src (Codasyl_dml.Engine.outcome_to_string o)
  | Error msg -> msg

let run_all session srcs = List.iter (fun src -> ignore (expect_ok session src)) srcs

(* --- parser -------------------------------------------------------------- *)

let test_parser_forms () =
  let p src = Codasyl_dml.Ast.to_string (Codasyl_dml.Parser.stmt src) in
  Alcotest.(check string) "move" "MOVE 'DB' TO title IN course"
    (p "MOVE 'DB' TO title IN course");
  Alcotest.(check string) "find any" "FIND ANY course USING title, semester IN course"
    (p "FIND ANY course USING title, semester IN course");
  Alcotest.(check string) "find current" "FIND CURRENT student WITHIN person_student"
    (p "find current student within person_student");
  Alcotest.(check string) "find duplicate"
    "FIND DUPLICATE WITHIN teaching USING title IN course"
    (p "FIND DUPLICATE WITHIN teaching USING title IN course");
  Alcotest.(check string) "find first" "FIND FIRST student WITHIN advisor"
    (p "FIND FIRST student WITHIN advisor");
  Alcotest.(check string) "find owner" "FIND OWNER WITHIN advisor"
    (p "FIND OWNER WITHIN advisor");
  Alcotest.(check string) "find within current"
    "FIND course WITHIN offers CURRENT USING title IN course"
    (p "FIND course WITHIN offers CURRENT USING title IN course");
  Alcotest.(check string) "get bare" "GET" (p "GET");
  Alcotest.(check string) "get record" "GET course" (p "GET course");
  Alcotest.(check string) "get items" "GET title, credits IN course"
    (p "GET title, credits IN course");
  Alcotest.(check string) "store" "STORE course" (p "STORE course");
  Alcotest.(check string) "connect" "CONNECT student TO advisor"
    (p "CONNECT student TO advisor");
  Alcotest.(check string) "disconnect two sets" "DISCONNECT x FROM a, b"
    (p "DISCONNECT x FROM a, b");
  Alcotest.(check string) "modify record" "MODIFY course" (p "MODIFY course");
  Alcotest.(check string) "modify items" "MODIFY credits IN course"
    (p "MODIFY credits IN course");
  Alcotest.(check string) "erase" "ERASE course" (p "ERASE course");
  Alcotest.(check string) "erase all" "ERASE ALL course" (p "ERASE ALL course")

let test_parser_errors () =
  let bad src =
    match Codasyl_dml.Parser.stmt src with
    | exception Codasyl_dml.Parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown verb" true (bad "FROBNICATE x");
  Alcotest.(check bool) "find any mismatched record" true
    (bad "FIND ANY course USING title IN student");
  Alcotest.(check bool) "move missing IN" true (bad "MOVE 1 TO x");
  Alcotest.(check bool) "trailing junk" true (bad "GET course extra")

let test_parser_program () =
  let stmts =
    Codasyl_dml.Parser.program
      "MOVE 1 TO x IN r -- comment\n\nGET r; STORE r\n-- whole line comment\n"
  in
  Alcotest.(check int) "three statements" 3 (List.length stmts)

(* --- FIND ------------------------------------------------------------------ *)

let test_find_any_and_translation () =
  let session, keys = fresh_session () in
  ignore (expect_ok session "MOVE 'Advanced Database' TO title IN course");
  Codasyl_dml.Session.clear_log session;
  let dbkey = expect_found session "FIND ANY course USING title IN course" in
  Alcotest.(check int) "finds c1" (key keys "course" "c1") dbkey;
  match Codasyl_dml.Session.request_log session with
  | [ request ] ->
    Alcotest.(check string) "generated RETRIEVE"
      "RETRIEVE ((FILE = 'course') AND (title = 'Advanced Database')) (ALL)"
      (Abdl.Ast.to_string request)
  | log -> Alcotest.failf "expected 1 request, got %d" (List.length log)

let test_find_any_not_found () =
  let session, _ = fresh_session () in
  ignore (expect_ok session "MOVE 'Underwater Basket Weaving' TO title IN course");
  expect_eos session "FIND ANY course USING title IN course"

let test_find_any_requires_uwa () =
  let session, _ = fresh_session () in
  let msg = expect_error session "FIND ANY course USING title IN course" in
  Alcotest.(check bool) "mentions work area" true
    (Daplex.Str_search.find msg "work area" <> None)

let test_find_first_next_prior_last () =
  let session, keys = fresh_session () in
  run_all session
    [ "MOVE 'Hsiao' TO name IN person"; "FIND ANY person USING name IN person";
      "FIND FIRST employee WITHIN person_employee";
      "FIND FIRST faculty WITHIN employee_faculty" ];
  let st1 = key keys "student" "st1" in
  let st2 = key keys "student" "st2" in
  let first = expect_found session "FIND FIRST student WITHIN advisor" in
  Alcotest.(check int) "first is st1" st1 first;
  let next = expect_found session "FIND NEXT student WITHIN advisor" in
  Alcotest.(check int) "next is st2" st2 next;
  expect_eos session "FIND NEXT student WITHIN advisor";
  let prior = expect_found session "FIND PRIOR student WITHIN advisor" in
  Alcotest.(check int) "prior back to st1" st1 prior;
  let last = expect_found session "FIND LAST student WITHIN advisor" in
  Alcotest.(check int) "last is st2" st2 last

let test_find_next_requires_buffer () =
  let session, _ = fresh_session () in
  let msg = expect_error session "FIND NEXT student WITHIN advisor" in
  Alcotest.(check bool) "asks for FIND FIRST" true
    (Daplex.Str_search.find msg "FIND FIRST" <> None)

let test_find_system_set_iteration () =
  let session, _ = fresh_session () in
  (* system-owned sets iterate the whole file, no owner needed *)
  let _ = expect_found session "FIND FIRST course WITHIN system_course" in
  let count = ref 1 in
  let rec loop () =
    match exec session "FIND NEXT course WITHIN system_course" with
    | Ok (Codasyl_dml.Engine.Found _) ->
      incr count;
      loop ()
    | Ok Codasyl_dml.Engine.End_of_set -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  in
  loop ();
  Alcotest.(check int) "all 12 courses" 12 !count

let test_find_owner () =
  let session, keys = fresh_session () in
  run_all session
    [ "MOVE 'Coker' TO name IN person"; "FIND ANY person USING name IN person" ];
  let _ = expect_found session "FIND FIRST student WITHIN person_student" in
  let owner = expect_found session "FIND OWNER WITHIN advisor" in
  Alcotest.(check int) "advisor is f1" (key keys "faculty" "f1") owner;
  (* owner of a SYSTEM set is an error *)
  let msg = expect_error session "FIND OWNER WITHIN system_person" in
  Alcotest.(check bool) "SYSTEM owner rejected" true
    (Daplex.Str_search.find msg "SYSTEM" <> None)

let test_find_owner_direction_iteration () =
  (* the paper's FIND FIRST person WITHIN person_student: iterate owners *)
  let session, _ = fresh_session () in
  let _ = expect_found session "FIND FIRST person WITHIN person_student" in
  let count = ref 1 in
  let rec loop () =
    match exec session "FIND NEXT person WITHIN person_student" with
    | Ok (Codasyl_dml.Engine.Found f) ->
      Alcotest.(check string) "type is person" "person" f.record_type;
      incr count;
      loop ()
    | Ok Codasyl_dml.Engine.End_of_set -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  in
  loop ();
  Alcotest.(check int) "six student-persons" 6 !count

let test_find_current_and_duplicate () =
  let session, keys = fresh_session () in
  run_all session
    [ "MOVE 'Advanced Database' TO title IN course";
      "FIND ANY course USING title IN course" ];
  (* populate the system_course buffer, then look for the duplicate title *)
  let c1 = key keys "course" "c1" in
  let c4 = key keys "course" "c4" in
  let first = expect_found session "FIND FIRST course WITHIN system_course" in
  Alcotest.(check int) "first course is c1" c1 first;
  let dup = expect_found session "FIND DUPLICATE WITHIN system_course USING title IN course" in
  Alcotest.(check int) "duplicate title at c4" c4 dup;
  expect_eos session "FIND DUPLICATE WITHIN system_course USING title IN course";
  (* FIND CURRENT re-establishes the run-unit from set currency after the
     run-unit moved to a different record type *)
  run_all session
    [ "MOVE 'Hsiao' TO name IN person"; "FIND ANY person USING name IN person" ];
  let back = expect_found session "FIND CURRENT course WITHIN system_course" in
  Alcotest.(check int) "current of set restored" c4 back

let test_find_within_current () =
  let session, keys = fresh_session () in
  run_all session
    [ "MOVE 'Computer Science' TO dname IN department";
      "FIND ANY department USING dname IN department";
      "MOVE 'Operating Systems' TO title IN course" ];
  let found = expect_found session "FIND course WITHIN offers CURRENT USING title IN course" in
  Alcotest.(check int) "c2 within d1's offers" (key keys "course" "c2") found;
  (* a course d1 does not offer *)
  ignore (expect_ok session "MOVE 'Calculus' TO title IN course");
  expect_eos session "FIND course WITHIN offers CURRENT USING title IN course"

(* --- GET ------------------------------------------------------------------- *)

let test_get_variants () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Compilers' TO title IN course"; "FIND ANY course USING title IN course" ];
  begin
    match expect_ok session "GET" with
    | Codasyl_dml.Engine.Got values ->
      Alcotest.(check bool) "has title" true
        (List.assoc_opt "title" values = Some (Abdm.Value.Str "Compilers"))
    | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
  end;
  begin
    match expect_ok session "GET course" with
    | Codasyl_dml.Engine.Got values ->
      Alcotest.(check bool) "has credits" true
        (List.assoc_opt "credits" values = Some (Abdm.Value.Int 4))
    | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
  end;
  begin
    match expect_ok session "GET title, credits IN course" with
    | Codasyl_dml.Engine.Got values ->
      Alcotest.(check int) "only requested items" 2 (List.length values)
    | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
  end;
  (* wrong record type *)
  let msg = expect_error session "GET student" in
  Alcotest.(check bool) "type mismatch" true
    (Daplex.Str_search.find msg "not a" <> None)

let test_get_requires_run_unit () =
  let session, _ = fresh_session () in
  let msg = expect_error session "GET" in
  Alcotest.(check bool) "null run-unit" true
    (Daplex.Str_search.find msg "null" <> None)

(* --- STORE ------------------------------------------------------------------ *)

let test_store_course () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Robotics' TO title IN course"; "MOVE 'Fall' TO semester IN course";
      "MOVE 4 TO credits IN course" ];
  match expect_ok session "STORE course" with
  | Codasyl_dml.Engine.Stored { dbkey } ->
    begin
      match Mapping.Kernel.get session.Codasyl_dml.Session.kernel dbkey with
      | Some r ->
        Alcotest.(check bool) "key fixed to dbkey" true
          (Abdm.Record.value_of r "course" = Some (Abdm.Value.Int dbkey));
        Alcotest.(check bool) "title stored" true
          (Abdm.Record.value_of r "title" = Some (Abdm.Value.Str "Robotics"))
      | None -> Alcotest.fail "stored record missing"
    end
  | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)

let test_store_duplicate_rejected () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Advanced Database' TO title IN course";
      "MOVE 'Spring' TO semester IN course"; "MOVE 4 TO credits IN course" ];
  let msg = expect_error session "STORE course" in
  Alcotest.(check bool) "duplicates refused" true
    (Daplex.Str_search.find msg "DUPLICATES" <> None);
  (* same title in a new semester is fine: UNIQUE title, semester *)
  ignore (expect_ok session "MOVE 'Summer' TO semester IN course");
  match expect_ok session "STORE course" with
  | Codasyl_dml.Engine.Stored _ -> ()
  | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)

let test_store_subtype_requires_isa_currency () =
  let session, _ = fresh_session () in
  ignore (expect_ok session "MOVE 'History' TO major IN student");
  let msg = expect_error session "STORE student" in
  Alcotest.(check bool) "needs current owner" true
    (Daplex.Str_search.find msg "BY APPLICATION" <> None)

let test_store_subtype_with_isa () =
  let session, _keys = fresh_session () in
  (* a brand-new person, so no terminal subtype can conflict *)
  run_all session
    [ "MOVE 'Newcomer' TO name IN person"; "MOVE 444556666 TO ssn IN person";
      "STORE person"; "MOVE 'History' TO major IN student" ];
  let person_key =
    match Network.Currency.run_unit session.Codasyl_dml.Session.cit with
    | Some e -> e.cur_dbkey
    | None -> Alcotest.fail "no current person"
  in
  match expect_ok session "STORE student" with
  | Codasyl_dml.Engine.Stored { dbkey } ->
    begin
      match Mapping.Kernel.get session.Codasyl_dml.Session.kernel dbkey with
      | Some r ->
        Alcotest.(check bool) "ISA reference filled" true
          (Abdm.Record.value_of r "person_student"
           = Some (Abdm.Value.Int person_key))
      | None -> Alcotest.fail "stored student missing"
    end
  | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)

let test_store_overlap_enforced () =
  let session, _ = fresh_session () in
  (* p10 (Coker) is already a student; student/faculty are disjoint
     subtype hierarchies sharing ancestor person *)
  run_all session
    [ "MOVE 'Coker' TO name IN person"; "FIND ANY person USING name IN person";
      "MOVE 30000 TO salary IN employee" ];
  match expect_ok session "STORE employee" with
  (* employee and student DO share ancestor person and are NOT declared
     overlapping... but employee is not terminal, so the constraint bites
     on terminal siblings only when declared. Check the declared case: *)
  | Codasyl_dml.Engine.Stored _ ->
    (* support_staff overlaps student by declaration: allowed *)
    run_all session [ "MOVE 40 TO hours IN support_staff" ];
    begin
      match expect_ok session "STORE support_staff" with
      | Codasyl_dml.Engine.Stored _ -> ()
      | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
    end
  | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)

let test_store_overlap_violation () =
  let session, _ = fresh_session () in
  (* Hsiao (p1) is an employee and a faculty; storing a student for p1
     must fail: student/faculty disjoint (no overlap declared), sharing
     ancestor person. *)
  run_all session
    [ "MOVE 'Hsiao' TO name IN person"; "FIND ANY person USING name IN person";
      "MOVE 'CS' TO major IN student" ];
  let msg = expect_error session "STORE student" in
  Alcotest.(check bool) "overlap violation" true
    (Daplex.Str_search.find msg "overlap" <> None)

(* --- CONNECT / DISCONNECT ----------------------------------------------------- *)

let test_connect_member_held () =
  let session, keys = fresh_session () in
  run_all session
    [
      (* detach Wortherly's student record st4 from its advisor: finding
         st4 makes its own advisor occurrence (f3's) current, which is
         exactly the occurrence DISCONNECT must target *)
      "MOVE 'Wortherly' TO name IN person";
      "FIND ANY person USING name IN person";
      "FIND FIRST student WITHIN person_student";
      "DISCONNECT student FROM advisor";
      (* establish the new owner occurrence: Demurjian's faculty record f2 *)
      "MOVE 'Demurjian' TO name IN person";
      "FIND ANY person USING name IN person";
      "FIND FIRST employee WITHIN person_employee";
      "FIND FIRST faculty WITHIN employee_faculty";
      (* re-find st4: its advisor reference is now null, so the f2
         occurrence stays current, and CONNECT attaches to it *)
      "MOVE 'Wortherly' TO name IN person";
      "FIND ANY person USING name IN person";
      "FIND FIRST student WITHIN person_student";
      "CONNECT student TO advisor";
    ];
  let st4 = key keys "student" "st4" in
  match Mapping.Kernel.get session.Codasyl_dml.Session.kernel st4 with
  | Some r ->
    Alcotest.(check bool) "advisor now f2" true
      (Abdm.Record.value_of r "advisor"
       = Some (Abdm.Value.Int (key keys "faculty" "f2")))
  | None -> Alcotest.fail "st4 missing"

let test_connect_automatic_rejected () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Coker' TO name IN person"; "FIND ANY person USING name IN person" ];
  let _ = expect_found session "FIND FIRST student WITHIN person_student" in
  let msg = expect_error session "CONNECT student TO person_student" in
  Alcotest.(check bool) "automatic insertion refused" true
    (Daplex.Str_search.find msg "AUTOMATIC" <> None)

let test_connect_owner_held_null_then_duplicate () =
  let session, keys = fresh_session () in
  (* Stored a brand-new department (offers null), connect two courses. *)
  run_all session
    [ "MOVE 'Electrical Engineering' TO dname IN department";
      "MOVE 'Bullard' TO building IN department"; "STORE department" ];
  let d_new =
    match Network.Currency.run_unit session.Codasyl_dml.Session.cit with
    | Some e -> e.cur_dbkey
    | None -> Alcotest.fail "no current department"
  in
  run_all session
    [ "MOVE 'Mechanics' TO title IN course"; "FIND ANY course USING title IN course";
      "CONNECT course TO offers" ];
  let copies kernel =
    Mapping.Kernel.select kernel
      (Abdl.Parser.query (Printf.sprintf "(FILE = department) AND (department = %d)" d_new))
  in
  Alcotest.(check int) "null copy updated in place" 1
    (List.length (copies session.Codasyl_dml.Session.kernel));
  (* connecting a second course must duplicate the owner record *)
  run_all session
    [ "MOVE 'Electromagnetism' TO title IN course";
      "FIND ANY course USING title IN course";
      (* re-establish offers owner currency on the new department *)
      "MOVE 'Electrical Engineering' TO dname IN department";
      "FIND ANY department USING dname IN department";
      "MOVE 'Electromagnetism' TO title IN course";
      "FIND ANY course USING title IN course";
      "CONNECT course TO offers" ];
  let after = copies session.Codasyl_dml.Session.kernel in
  Alcotest.(check int) "owner duplicated" 2 (List.length after);
  let offered =
    List.filter_map
      (fun (_, r) ->
        match Abdm.Record.value_of r "offers" with
        | Some (Abdm.Value.Int k) -> Some k
        | _ -> None)
      after
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "both courses offered"
    (List.sort compare [ key keys "course" "c8"; key keys "course" "c9" ])
    offered

let test_disconnect_owner_held () =
  let session, keys = fresh_session () in
  let d1 = key keys "department" "d1" in
  run_all session
    [ "MOVE 'Computer Science' TO dname IN department";
      "FIND ANY department USING dname IN department";
      "MOVE 'Compilers' TO title IN course"; "FIND ANY course USING title IN course";
      "DISCONNECT course FROM offers" ];
  let copies =
    Mapping.Kernel.select session.Codasyl_dml.Session.kernel
      (Abdl.Parser.query (Printf.sprintf "(FILE = department) AND (department = %d)" d1))
  in
  (* multi-member set: the copy referencing c3 is deleted *)
  Alcotest.(check int) "one copy deleted" 3 (List.length copies);
  let c3 = key keys "course" "c3" in
  Alcotest.(check bool) "no copy references c3" true
    (List.for_all
       (fun (_, r) -> Abdm.Record.value_of r "offers" <> Some (Abdm.Value.Int c3))
       copies)

let test_disconnect_fixed_retention_rejected () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Coker' TO name IN person"; "FIND ANY person USING name IN person" ];
  let _ = expect_found session "FIND FIRST student WITHIN person_student" in
  let msg = expect_error session "DISCONNECT student FROM person_student" in
  Alcotest.(check bool) "fixed retention refused" true
    (Daplex.Str_search.find msg "FIXED" <> None)

(* --- MODIFY ------------------------------------------------------------------- *)

let test_modify_items () =
  let session, keys = fresh_session () in
  run_all session
    [ "MOVE 'Simulation' TO title IN course"; "FIND ANY course USING title IN course";
      "MOVE 5 TO credits IN course"; "MODIFY credits IN course" ];
  let c12 = key keys "course" "c12" in
  match Mapping.Kernel.get session.Codasyl_dml.Session.kernel c12 with
  | Some r ->
    Alcotest.(check bool) "credits updated" true
      (Abdm.Record.value_of r "credits" = Some (Abdm.Value.Int 5))
  | None -> Alcotest.fail "c12 missing"

let test_modify_key_attr_rejected () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Simulation' TO title IN course"; "FIND ANY course USING title IN course";
      "MOVE 999 TO course IN course" ];
  let msg = expect_error session "MODIFY course IN course" in
  Alcotest.(check bool) "key attr protected" true
    (Daplex.Str_search.find msg "key" <> None)

let test_modify_generates_one_update_per_item () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Simulation' TO title IN course"; "FIND ANY course USING title IN course";
      "MOVE 'Queueing' TO title IN course"; "MOVE 2 TO credits IN course" ];
  Codasyl_dml.Session.clear_log session;
  ignore (expect_ok session "MODIFY title, credits IN course");
  let updates =
    List.filter
      (fun r -> match r with Abdl.Ast.Update _ -> true | _ -> false)
      (Codasyl_dml.Session.request_log session)
  in
  Alcotest.(check int) "one UPDATE per item (§VI.F)" 2 (List.length updates)

(* --- ERASE -------------------------------------------------------------------- *)

let test_erase_referenced_rejected () =
  let session, _ = fresh_session () in
  (* c1 is offered by d1 and taught by f1: both constraints bite *)
  run_all session
    [ "MOVE 'Compilers' TO title IN course"; "FIND ANY course USING title IN course" ];
  let msg = expect_error session "ERASE course" in
  Alcotest.(check bool) "reference blocks erase" true
    (Daplex.Str_search.find msg "ERASE" <> None)

let test_erase_fresh_record () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Ephemeral' TO title IN course"; "MOVE 'Fall' TO semester IN course";
      "MOVE 1 TO credits IN course"; "STORE course"; "ERASE course" ];
  ignore (expect_ok session "MOVE 'Ephemeral' TO title IN course");
  expect_eos session "FIND ANY course USING title IN course";
  (* currency must not dangle *)
  let msg = expect_error session "GET" in
  Alcotest.(check bool) "run-unit nulled" true
    (Daplex.Str_search.find msg "null" <> None)

let test_erase_all_rejected () =
  let session, _ = fresh_session () in
  let msg = expect_error session "ERASE ALL course" in
  Alcotest.(check bool) "not translated" true
    (Daplex.Str_search.find msg "not translated" <> None)

(* --- against MBDS -------------------------------------------------------------- *)

let test_full_flow_on_mbds () =
  let session, keys = fresh_session ~backends:4 () in
  run_all session
    [ "MOVE 'Hsiao' TO name IN person"; "FIND ANY person USING name IN person";
      "FIND FIRST employee WITHIN person_employee";
      "FIND FIRST faculty WITHIN employee_faculty" ];
  let first = expect_found session "FIND FIRST student WITHIN advisor" in
  Alcotest.(check int) "same navigation on 4 backends"
    (key keys "student" "st1") first

let suite =
  [
    "parser forms", `Quick, test_parser_forms;
    "parser errors", `Quick, test_parser_errors;
    "parser program", `Quick, test_parser_program;
    "FIND ANY + translation", `Quick, test_find_any_and_translation;
    "FIND ANY not found", `Quick, test_find_any_not_found;
    "FIND ANY requires UWA", `Quick, test_find_any_requires_uwa;
    "FIND FIRST/NEXT/PRIOR/LAST", `Quick, test_find_first_next_prior_last;
    "FIND NEXT requires buffer", `Quick, test_find_next_requires_buffer;
    "FIND over system set", `Quick, test_find_system_set_iteration;
    "FIND OWNER", `Quick, test_find_owner;
    "FIND owner-direction iteration", `Quick, test_find_owner_direction_iteration;
    "FIND CURRENT and DUPLICATE", `Quick, test_find_current_and_duplicate;
    "FIND WITHIN CURRENT", `Quick, test_find_within_current;
    "GET variants", `Quick, test_get_variants;
    "GET requires run-unit", `Quick, test_get_requires_run_unit;
    "STORE course", `Quick, test_store_course;
    "STORE duplicate rejected", `Quick, test_store_duplicate_rejected;
    "STORE subtype requires ISA currency", `Quick, test_store_subtype_requires_isa_currency;
    "STORE subtype with ISA", `Quick, test_store_subtype_with_isa;
    "STORE overlap allowed when declared", `Quick, test_store_overlap_enforced;
    "STORE overlap violation", `Quick, test_store_overlap_violation;
    "CONNECT member-held", `Quick, test_connect_member_held;
    "CONNECT automatic rejected", `Quick, test_connect_automatic_rejected;
    "CONNECT owner-held null/duplicate", `Quick, test_connect_owner_held_null_then_duplicate;
    "DISCONNECT owner-held", `Quick, test_disconnect_owner_held;
    "DISCONNECT fixed retention rejected", `Quick, test_disconnect_fixed_retention_rejected;
    "MODIFY items", `Quick, test_modify_items;
    "MODIFY key attr rejected", `Quick, test_modify_key_attr_rejected;
    "MODIFY one UPDATE per item", `Quick, test_modify_generates_one_update_per_item;
    "ERASE referenced rejected", `Quick, test_erase_referenced_rejected;
    "ERASE fresh record", `Quick, test_erase_fresh_record;
    "ERASE ALL rejected", `Quick, test_erase_all_rejected;
    "full flow on MBDS", `Quick, test_full_flow_on_mbds;
  ]

(* --- multi-set CONNECT atomicity ------------------------------------------- *)

let test_connect_multi_set_atomic () =
  let session, keys = fresh_session () in
  (* establish run-unit = st4 and advisor owner = its current advisor f3;
     person_student is AUTOMATIC so CONNECT to it must fail — and the
     preceding advisor re-connect must be rolled back *)
  run_all session
    [ "MOVE 'Wortherly' TO name IN person"; "FIND ANY person USING name IN person";
      "FIND FIRST student WITHIN person_student"; "DISCONNECT student FROM advisor";
      "MOVE 'Demurjian' TO name IN person"; "FIND ANY person USING name IN person";
      "FIND FIRST employee WITHIN person_employee";
      "FIND FIRST faculty WITHIN employee_faculty";
      "MOVE 'Wortherly' TO name IN person"; "FIND ANY person USING name IN person";
      "FIND FIRST student WITHIN person_student" ];
  let msg = expect_error session "CONNECT student TO advisor, person_student" in
  Alcotest.(check bool) "aborted on the automatic set" true
    (Daplex.Str_search.find msg "AUTOMATIC" <> None);
  let st4 = key keys "student" "st4" in
  match Mapping.Kernel.get session.Codasyl_dml.Session.kernel st4 with
  | Some r ->
    Alcotest.(check bool) "advisor connect rolled back" true
      (Abdm.Record.value_of r "advisor" = Some Abdm.Value.Null)
  | None -> Alcotest.fail "st4 missing"

let test_transaction_rollback_on_mbds () =
  let kernel = Mapping.Kernel.multi 3 in
  let record i =
    Abdm.Record.make
      [ Abdm.Keyword.file "f"; Abdm.Keyword.make "x" (Abdm.Value.Int i) ]
  in
  List.iter (fun i -> ignore (Mapping.Kernel.insert kernel (record i))) [ 1; 2; 3 ];
  let before = Mapping.Kernel.size kernel in
  let result =
    Mapping.Kernel.atomically kernel (fun () ->
        ignore (Mapping.Kernel.insert kernel (record 4));
        ignore (Mapping.Kernel.delete kernel (Abdl.Parser.query "(FILE = f) AND (x = 1)"));
        Error "abort")
  in
  Alcotest.(check bool) "error propagated" true (result = Error "abort");
  Alcotest.(check int) "size restored across backends" before
    (Mapping.Kernel.size kernel)

let suite =
  suite
  @ [
      "CONNECT multi-set atomicity", `Quick, test_connect_multi_set_atomic;
      "kernel rollback on MBDS", `Quick, test_transaction_rollback_on_mbds;
    ]

(* --- random DML walks keep the AB(functional) database consistent ---------- *)

(* Referential integrity of the stored representation: every set-reference
   attribute is NULL or names a live entity of the related record type. *)
let referentially_consistent (session : Codasyl_dml.Session.t) transform =
  let kernel = session.Codasyl_dml.Session.kernel in
  let live type_name key =
    Mapping.Kernel.select kernel
      (Abdm.Query.conj
         [ Abdm.Predicate.file_eq type_name;
           Abdm.Predicate.make type_name Abdm.Predicate.Eq (Abdm.Value.Int key) ])
    <> []
  in
  let net = transform.Transformer.Transform.net in
  List.for_all
    (fun (s : Network.Types.set_type) ->
      match Transformer.Transform.origin_of_set transform s.set_name with
      | Some Transformer.Transform.O_system -> true
      | Some Transformer.Transform.O_isa
      | Some (Transformer.Transform.O_function_member _)
      | Some (Transformer.Transform.O_link _) ->
        (* reference lives in the member record, names the owner *)
        Mapping.Kernel.select kernel
          (Abdm.Query.conj [ Abdm.Predicate.file_eq s.set_member ])
        |> List.for_all (fun (_, r) ->
               match Abdm.Record.value_of r s.set_name with
               | Some (Abdm.Value.Int k) -> live s.set_owner k
               | Some Abdm.Value.Null | None -> true
               | Some _ -> false)
      | Some (Transformer.Transform.O_function_owner _) ->
        (* reference lives in the owner record, names the member *)
        Mapping.Kernel.select kernel
          (Abdm.Query.conj [ Abdm.Predicate.file_eq s.set_owner ])
        |> List.for_all (fun (_, r) ->
               match Abdm.Record.value_of r s.set_name with
               | Some (Abdm.Value.Int k) -> live s.set_member k
               | Some Abdm.Value.Null | None -> true
               | Some _ -> false)
      | None -> true)
    net.Network.Schema.sets

let dml_statement_pool =
  [|
    "MOVE 'Advanced Database' TO title IN course";
    "MOVE 'Robotics' TO title IN course";
    "MOVE 'Fall' TO semester IN course";
    "MOVE 'Spring' TO semester IN course";
    "MOVE 3 TO credits IN course";
    "MOVE 'Hsiao' TO name IN person";
    "MOVE 'Coker' TO name IN person";
    "MOVE 'Newbie' TO name IN person";
    "MOVE 987654321 TO ssn IN person";
    "MOVE 'History' TO major IN student";
    "FIND ANY course USING title IN course";
    "FIND ANY person USING name IN person";
    "FIND FIRST student WITHIN person_student";
    "FIND FIRST employee WITHIN person_employee";
    "FIND FIRST faculty WITHIN employee_faculty";
    "FIND FIRST course WITHIN system_course";
    "FIND NEXT course WITHIN system_course";
    "FIND FIRST student WITHIN advisor";
    "FIND OWNER WITHIN advisor";
    "FIND OWNER WITHIN person_student";
    "GET";
    "STORE course";
    "STORE person";
    "STORE student";
    "MODIFY credits IN course";
    "CONNECT student TO advisor";
    "DISCONNECT student FROM advisor";
    "CONNECT course TO offers";
    "DISCONNECT course FROM offers";
    "ERASE course";
    "ERASE student";
  |]

let prop_random_dml_walk =
  QCheck2.Test.make
    ~name:"random CODASYL-DML walks keep referential integrity" ~count:40
    QCheck2.Gen.(list_size (int_range 5 40) (int_range 0 (Array.length dml_statement_pool - 1)))
    (fun picks ->
      let kernel, transform, _ = Mapping.Loader.university () in
      let session =
        Codasyl_dml.Session.create kernel (Mapping.Ab_schema.Fun transform)
      in
      List.iter
        (fun i ->
          let src = dml_statement_pool.(i) in
          match
            Codasyl_dml.Engine.execute session (Codasyl_dml.Parser.stmt src)
          with
          | Ok _ | Error _ -> ())
        picks;
      referentially_consistent session transform)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_random_dml_walk ]

let test_erase_supertype_blocked_by_subtype () =
  (* a person with a student record owns a non-empty ISA occurrence *)
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Coker' TO name IN person"; "FIND ANY person USING name IN person" ];
  let msg = expect_error session "ERASE person" in
  Alcotest.(check bool) "ISA occurrence blocks erase" true
    (Daplex.Str_search.find msg "non-empty" <> None)

let test_erase_leaf_subtype_ok () =
  (* a support_staff record is a leaf: disconnect its supervisor set
     reference is not needed (it holds the reference itself), so ERASE
     only needs no one pointing AT it *)
  let session, keys = fresh_session () in
  run_all session
    [ "MOVE 'Garcia' TO name IN person"; "FIND ANY person USING name IN person";
      "FIND FIRST employee WITHIN person_employee";
      "FIND FIRST support_staff WITHIN employee_support_staff";
      "ERASE support_staff" ];
  let s3 = key keys "support_staff" "s3" in
  Alcotest.(check bool) "record gone" true
    (Mapping.Kernel.get session.Codasyl_dml.Session.kernel s3 = None)

let suite =
  suite
  @ [
      "ERASE supertype blocked by subtype", `Quick, test_erase_supertype_blocked_by_subtype;
      "ERASE leaf subtype ok", `Quick, test_erase_leaf_subtype_ok;
    ]

(* --- PERFORM UNTIL EOF (the §VI.B.4 loop idiom) ----------------------------- *)

let test_perform_until_eof_paper_example () =
  (* the paper's worked transaction: iterate a professor's advisees *)
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Hsiao' TO name IN person"; "FIND ANY person USING name IN person";
      "FIND FIRST employee WITHIN person_employee";
      "FIND FIRST faculty WITHIN employee_faculty";
      "FIND FIRST student WITHIN advisor" ];
  let program =
    Codasyl_dml.Parser.program
      {|PERFORM UNTIL EOF = 'YES'
GET student
FIND NEXT student WITHIN advisor
END PERFORM|}
  in
  Alcotest.(check int) "one loop statement" 1 (List.length program);
  let results = Codasyl_dml.Engine.run_program session program in
  match results with
  | [ (_, Ok (Codasyl_dml.Engine.Done msg)) ] ->
    (* Hsiao advises two students: the loop GETs st1, advances to st2,
       GETs st2, then the FIND NEXT hits end-of-set in iteration 2 *)
    Alcotest.(check bool) "two iterations" true
      (Daplex.Str_search.find msg "1 iteration" <> None
       || Daplex.Str_search.find msg "2 iteration" <> None)
  | _ -> Alcotest.fail "loop did not complete"

let test_perform_nested_and_errors () =
  let session, _ = fresh_session () in
  (* nested blocks parse *)
  let program =
    Codasyl_dml.Parser.program
      {|PERFORM UNTIL EOF
FIND NEXT course WITHIN system_course
PERFORM UNTIL EOF
FIND NEXT student WITHIN advisor
END PERFORM
END PERFORM|}
  in
  begin
    match program with
    | [ Codasyl_dml.Ast.Perform_until_eof [ _; Codasyl_dml.Ast.Perform_until_eof [ _ ] ] ] -> ()
    | _ -> Alcotest.fail "nested structure expected"
  end;
  (* unterminated block rejected *)
  Alcotest.(check bool) "unterminated rejected" true
    (match Codasyl_dml.Parser.program "PERFORM UNTIL EOF\nGET" with
     | exception Codasyl_dml.Parser.Parse_error _ -> true
     | _ -> false);
  (* stray END PERFORM rejected *)
  Alcotest.(check bool) "stray closer rejected" true
    (match Codasyl_dml.Parser.program "GET\nEND PERFORM" with
     | exception Codasyl_dml.Parser.Parse_error _ -> true
     | _ -> false);
  (* a loop that can never reach EOF is stopped defensively *)
  let msg =
    match
      Codasyl_dml.Engine.execute session
        (List.hd (Codasyl_dml.Parser.program "PERFORM UNTIL EOF\nMOVE 1 TO credits IN course\nEND PERFORM"))
    with
    | Error msg -> msg
    | Ok o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
  in
  Alcotest.(check bool) "runaway loop capped" true
    (Daplex.Str_search.find msg "iterations" <> None)

let suite =
  suite
  @ [
      "PERFORM UNTIL EOF (paper's loop)", `Quick, test_perform_until_eof_paper_example;
      "PERFORM nesting and errors", `Quick, test_perform_nested_and_errors;
    ]

let test_find_any_fills_request_buffer () =
  (* §VI.B.3's assumption: records located by a prior FIND are already in
     RB, so FIND DUPLICATE works right after FIND ANY *)
  let session, keys = fresh_session () in
  run_all session
    [ "MOVE 'Advanced Database' TO title IN course";
      "FIND ANY course USING title IN course" ];
  let dup = expect_found session "FIND DUPLICATE WITHIN system_course USING title IN course" in
  Alcotest.(check int) "duplicate straight from FIND ANY's RB"
    (key keys "course" "c4") dup;
  (* and the paper's CS-students loop: FIND ANY student restricts the
     person_student RB to the CS students, whose persons are iterated *)
  run_all session
    [ "MOVE 'Computer Science' TO major IN student";
      "FIND ANY student USING major IN student" ];
  let _ = expect_found session "FIND FIRST person WITHIN person_student" in
  let count = ref 1 in
  let rec loop () =
    match exec session "FIND NEXT person WITHIN person_student" with
    | Ok (Codasyl_dml.Engine.Found _) -> incr count; loop ()
    | Ok Codasyl_dml.Engine.End_of_set -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  in
  loop ();
  Alcotest.(check int) "three CS persons" 3 !count

let suite =
  suite @ [ "FIND ANY fills RB", `Quick, test_find_any_fills_request_buffer ]

let test_connect_disconnect_wrong_member () =
  let session, _ = fresh_session () in
  run_all session
    [ "MOVE 'Compilers' TO title IN course"; "FIND ANY course USING title IN course" ];
  (* course is not a member of advisor (students are) *)
  let msg = expect_error session "CONNECT course TO advisor" in
  Alcotest.(check bool) "connect membership checked" true
    (Daplex.Str_search.find msg "not a member" <> None);
  let msg = expect_error session "DISCONNECT course FROM advisor" in
  Alcotest.(check bool) "disconnect membership checked" true
    (Daplex.Str_search.find msg "not a member" <> None)

let suite =
  suite
  @ [ "CONNECT/DISCONNECT wrong member", `Quick, test_connect_disconnect_wrong_member ]
