(* Tests for the Daplex DML subset: FOR EACH / PRINT with value
   inheritance, CREATE, DESTROY. *)

let fresh () =
  let kernel, transform, keys = Mapping.Loader.university () in
  Daplex_dml.Engine.create kernel transform, keys

let key keys type_name row_key =
  match Mapping.Loader.find_key keys ~type_name ~row_key with
  | Some k -> k
  | None -> Alcotest.failf "no key for %s/%s" type_name row_key

let exec t src = Daplex_dml.Engine.execute t (Daplex_dml.Parser.stmt src)

let rows t src =
  match exec t src with
  | Ok (Daplex_dml.Engine.Printed rows) -> rows
  | Ok o -> Alcotest.failf "%s: expected rows, got %s" src (Daplex_dml.Engine.outcome_to_string o)
  | Error msg -> Alcotest.failf "%s: %s" src msg

let cell row label =
  match List.assoc_opt label row with
  | Some v -> Abdm.Value.to_display v
  | None -> Alcotest.failf "no column %s" label

(* --- parser ----------------------------------------------------------- *)

let test_parser () =
  let p src = Daplex_dml.Ast.to_string (Daplex_dml.Parser.stmt src) in
  Alcotest.(check string) "for each"
    "FOR EACH s IN student SUCH THAT major(s) = 'CS' PRINT name(s), major(s) END"
    (p "FOR EACH s IN student SUCH THAT major(s) = 'CS' PRINT name(s), major(s) END");
  Alcotest.(check string) "nested path"
    "FOR EACH s IN student PRINT name(advisor(s)) END"
    (p "FOR EACH s IN student PRINT name(advisor(s)) END");
  Alcotest.(check string) "create"
    "CREATE course (title = 'X', credits = 3)"
    (p "CREATE course (title = 'X', credits = 3)");
  Alcotest.(check string) "create under"
    "CREATE student UNDER person 17 (major = 'History')"
    (p "CREATE student UNDER person 17 (major = 'History')");
  Alcotest.(check string) "destroy"
    "DESTROY c IN course SUCH THAT title(c) = 'X'"
    (p "DESTROY c IN course SUCH THAT title(c) = 'X'");
  Alcotest.(check bool) "parse error" true
    (match Daplex_dml.Parser.stmt "FOR EACH s student PRINT x END" with
     | exception Daplex_dml.Parser.Parse_error _ -> true
     | _ -> false)

(* --- FOR EACH --------------------------------------------------------- *)

let test_for_each_own_function () =
  let t, _ = fresh () in
  let out = rows t "FOR EACH c IN course SUCH THAT credits(c) = 3 PRINT title(c) END" in
  Alcotest.(check int) "four 3-credit courses" 4 (List.length out)

let test_for_each_inherited_function () =
  let t, _ = fresh () in
  (* name is declared on person; students must inherit it *)
  let out =
    rows t
      "FOR EACH s IN student SUCH THAT major(s) = 'Computer Science' PRINT name(s) END"
  in
  let names = List.map (fun row -> cell row "name(s)") out in
  Alcotest.(check (list string)) "inherited names"
    [ "Coker"; "Rodeck"; "Emdi" ] names

let test_for_each_inherited_condition () =
  let t, _ = fresh () in
  (* salary is on employee; faculty inherit it through the ISA set *)
  let out =
    rows t "FOR EACH f IN faculty SUCH THAT salary(f) > 60000 PRINT rank(f), salary(f) END"
  in
  Alcotest.(check int) "three well-paid faculty" 3 (List.length out)

let test_for_each_nested_path () =
  let t, _ = fresh () in
  let out =
    rows t
      "FOR EACH s IN student SUCH THAT name(s) = 'Coker' PRINT name(advisor(s)) END"
  in
  Alcotest.(check int) "one row" 1 (List.length out);
  (* advisor(s) is f1 = Hsiao; name() of the faculty walks faculty ->
     employee -> person *)
  Alcotest.(check string) "advisor name" "Hsiao"
    (cell (List.hd out) "name(advisor(s))")

let test_for_each_multivalued () =
  let t, _ = fresh () in
  let out =
    rows t "FOR EACH f IN faculty SUCH THAT rank(f) = 'full' PRINT title(teaching(f)) END"
  in
  (* f1 (Hsiao) and f4 (Marshall) are full professors *)
  Alcotest.(check int) "two rows" 2 (List.length out);
  let joined = List.map (fun row -> cell row "title(teaching(f))") out in
  Alcotest.(check bool) "Hsiao teaches Advanced Database twice + OS" true
    (List.exists
       (fun s -> Daplex.Str_search.find s "Operating Systems" <> None)
       joined)

let test_for_each_scalar_multivalued () =
  let t, _ = fresh () in
  let out =
    rows t "FOR EACH e IN employee SUCH THAT name(e) = 'Bradley' PRINT dependents(e) END"
  in
  Alcotest.(check string) "three dependents joined" "Dan, Eve, Fay"
    (cell (List.hd out) "dependents(e)")

let test_for_each_errors () =
  let t, _ = fresh () in
  let bad src =
    match exec t src with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "unknown entity" true
    (bad "FOR EACH x IN ghost PRINT x END");
  Alcotest.(check bool) "unknown function" true
    (bad "FOR EACH c IN course PRINT colour(c) END");
  Alcotest.(check bool) "unbound variable" true
    (bad "FOR EACH c IN course PRINT title(d) END");
  Alcotest.(check bool) "composing a scalar" true
    (bad "FOR EACH c IN course PRINT title(credits(c)) END")

(* --- CREATE / DESTROY --------------------------------------------------- *)

let test_create_entity () =
  let t, _ = fresh () in
  begin
    match exec t "CREATE course (title = 'Robotics', semester = 'Fall', credits = 4)" with
    | Ok (Daplex_dml.Engine.Created _) -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  end;
  let out = rows t "FOR EACH c IN course SUCH THAT title(c) = 'Robotics' PRINT credits(c) END" in
  Alcotest.(check int) "created course found" 1 (List.length out)

let test_create_subtype_requires_under () =
  let t, _ = fresh () in
  match exec t "CREATE student (major = 'History')" with
  | Error msg ->
    Alcotest.(check bool) "asks for UNDER" true
      (Daplex.Str_search.find msg "UNDER" <> None)
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)

let test_create_subtype_under () =
  let t, keys = fresh () in
  let p4 = key keys "person" "p4" in
  match
    exec t (Printf.sprintf "CREATE student UNDER person %d (major = 'History')" p4)
  with
  | Ok (Daplex_dml.Engine.Created _) ->
    let out =
      rows t "FOR EACH s IN student SUCH THAT major(s) = 'History' PRINT name(s) END"
    in
    Alcotest.(check string) "inherits Marshall's name" "Marshall"
      (cell (List.hd out) "name(s)")
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)
  | Error msg -> Alcotest.fail msg

let test_create_rejects_entity_valued () =
  let t, _ = fresh () in
  match exec t "CREATE course (taught_by = 3)" with
  | Error msg ->
    Alcotest.(check bool) "entity-valued rejected" true
      (Daplex.Str_search.find msg "entity-valued" <> None)
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)

let test_destroy_referenced_aborts () =
  let t, _ = fresh () in
  match exec t "DESTROY c IN course SUCH THAT title(c) = 'Compilers'" with
  | Error msg ->
    Alcotest.(check bool) "abort on reference" true
      (Daplex.Str_search.find msg "referenced" <> None)
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)

let test_destroy_fresh_and_hierarchy () =
  let t, keys = fresh () in
  (* create a fresh person with a student record under it; destroying the
     person must also remove the student (the hierarchy of §VI.H) *)
  let created =
    match exec t "CREATE person (name = 'Temp', ssn = 1)" with
    | Ok (Daplex_dml.Engine.Created k) -> k
    | _ -> Alcotest.fail "create person failed"
  in
  ignore keys;
  begin
    match
      exec t (Printf.sprintf "CREATE student UNDER person %d (major = 'Art')" created)
    with
    | Ok (Daplex_dml.Engine.Created _) -> ()
    | _ -> Alcotest.fail "create student failed"
  end;
  begin
    match exec t "DESTROY p IN person SUCH THAT name(p) = 'Temp'" with
    | Ok (Daplex_dml.Engine.Destroyed 1) -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  end;
  let out = rows t "FOR EACH s IN student SUCH THAT major(s) = 'Art' PRINT major(s) END" in
  Alcotest.(check int) "student destroyed with person" 0 (List.length out)

let suite =
  [
    "parser", `Quick, test_parser;
    "FOR EACH own function", `Quick, test_for_each_own_function;
    "FOR EACH inherited function", `Quick, test_for_each_inherited_function;
    "FOR EACH inherited condition", `Quick, test_for_each_inherited_condition;
    "FOR EACH nested path", `Quick, test_for_each_nested_path;
    "FOR EACH multi-valued", `Quick, test_for_each_multivalued;
    "FOR EACH scalar multi-valued", `Quick, test_for_each_scalar_multivalued;
    "FOR EACH errors", `Quick, test_for_each_errors;
    "CREATE entity", `Quick, test_create_entity;
    "CREATE subtype requires UNDER", `Quick, test_create_subtype_requires_under;
    "CREATE subtype UNDER person", `Quick, test_create_subtype_under;
    "CREATE rejects entity-valued", `Quick, test_create_rejects_entity_valued;
    "DESTROY referenced aborts", `Quick, test_destroy_referenced_aborts;
    "DESTROY hierarchy", `Quick, test_destroy_fresh_and_hierarchy;
  ]

(* --- LET / INCLUDE / EXCLUDE (Shipman's update statements) ---------------- *)

let test_let_scalar () =
  let t, _ = fresh () in
  begin
    match
      exec t
        "FOR EACH s IN student SUCH THAT name(s) = 'Coker' LET major(s) = 'Mathematics' END"
    with
    | Ok (Daplex_dml.Engine.Printed []) -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  end;
  let out = rows t "FOR EACH s IN student SUCH THAT name(s) = 'Coker' PRINT major(s) END" in
  Alcotest.(check string) "major reassigned" "Mathematics"
    (cell (List.hd out) "major(s)")

let test_let_inherited_scalar () =
  let t, _ = fresh () in
  (* salary lives on employee; LET through a faculty walks the ISA chain *)
  ignore
    (exec t
       "FOR EACH f IN faculty SUCH THAT name(f) = 'Hsiao' LET salary(f) = 90000 END");
  let out = rows t "FOR EACH f IN faculty SUCH THAT name(f) = 'Hsiao' PRINT salary(f) END" in
  Alcotest.(check string) "salary updated at the employee record" "90000"
    (cell (List.hd out) "salary(f)")

let test_let_rejects_entity_valued () =
  let t, _ = fresh () in
  match exec t "FOR EACH s IN student LET advisor(s) = 3 END" with
  | Error msg ->
    Alcotest.(check bool) "suggests INCLUDE/EXCLUDE" true
      (Daplex.Str_search.find msg "INCLUDE" <> None)
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)

let test_include_single_valued () =
  let t, _ = fresh () in
  ignore
    (exec t
       "FOR EACH s IN student SUCH THAT name(s) = 'Coker' INCLUDE advisor(s) THE f IN faculty SUCH THAT name(f) = 'Lum' END");
  let out =
    rows t
      "FOR EACH s IN student SUCH THAT name(s) = 'Coker' PRINT name(advisor(s)) END"
  in
  Alcotest.(check string) "advisor switched" "Lum"
    (cell (List.hd out) "name(advisor(s))")

let test_exclude_single_valued () =
  let t, _ = fresh () in
  ignore
    (exec t
       "FOR EACH s IN student SUCH THAT name(s) = 'Coker' EXCLUDE advisor(s) THE f IN faculty SUCH THAT name(f) = 'Hsiao' END");
  let out =
    rows t "FOR EACH s IN student SUCH THAT name(s) = 'Coker' PRINT advisor(s) END"
  in
  Alcotest.(check string) "advisor nulled" "NULL" (cell (List.hd out) "advisor(s)")

let test_include_exclude_link () =
  let t, _ = fresh () in
  (* Hsiao does not teach Compilers; include it, then exclude it *)
  ignore
    (exec t
       "FOR EACH f IN faculty SUCH THAT name(f) = 'Hsiao' INCLUDE teaching(f) THE c IN course SUCH THAT title(c) = 'Compilers' END");
  let courses () =
    cell
      (List.hd
         (rows t
            "FOR EACH f IN faculty SUCH THAT name(f) = 'Hsiao' PRINT title(teaching(f)) END"))
      "title(teaching(f))"
  in
  Alcotest.(check bool) "Compilers included" true
    (Daplex.Str_search.find (courses ()) "Compilers" <> None);
  ignore
    (exec t
       "FOR EACH f IN faculty SUCH THAT name(f) = 'Hsiao' EXCLUDE teaching(f) THE c IN course SUCH THAT title(c) = 'Compilers' END");
  Alcotest.(check bool) "Compilers excluded" true
    (Daplex.Str_search.find (courses ()) "Compilers" = None)

let test_include_owner_held () =
  let t, _ = fresh () in
  (* Physics (d3) does not offer Calculus; include it *)
  ignore
    (exec t
       "FOR EACH d IN department SUCH THAT dname(d) = 'Physics' INCLUDE offers(d) THE c IN course SUCH THAT title(c) = 'Calculus' END");
  let out =
    rows t
      "FOR EACH d IN department SUCH THAT dname(d) = 'Physics' PRINT title(offers(d)) END"
  in
  Alcotest.(check bool) "Calculus now offered by Physics" true
    (Daplex.Str_search.find (cell (List.hd out) "title(offers(d))") "Calculus"
     <> None)

let test_exclude_owner_held () =
  let t, _ = fresh () in
  ignore
    (exec t
       "FOR EACH d IN department SUCH THAT dname(d) = 'Physics' EXCLUDE offers(d) THE c IN course SUCH THAT title(c) = 'Mechanics' END");
  let out =
    rows t
      "FOR EACH d IN department SUCH THAT dname(d) = 'Physics' PRINT title(offers(d)) END"
  in
  Alcotest.(check bool) "Mechanics dropped" true
    (Daplex.Str_search.find (cell (List.hd out) "title(offers(d))") "Mechanics"
     = None)

let test_selector_must_be_unique () =
  let t, _ = fresh () in
  match
    exec t
      "FOR EACH f IN faculty SUCH THAT name(f) = 'Hsiao' INCLUDE teaching(f) THE c IN course SUCH THAT credits(c) = 4 END"
  with
  | Error msg ->
    Alcotest.(check bool) "ambiguous selector rejected" true
      (Daplex.Str_search.find msg "expected one" <> None)
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)

let test_include_wrong_range () =
  let t, _ = fresh () in
  match
    exec t
      "FOR EACH f IN faculty SUCH THAT name(f) = 'Hsiao' INCLUDE teaching(f) THE d IN department SUCH THAT dname(d) = 'Physics' END"
  with
  | Error msg ->
    Alcotest.(check bool) "range mismatch" true
      (Daplex.Str_search.find msg "ranges over" <> None)
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)

let test_mixed_body_actions () =
  let t, _ = fresh () in
  let out =
    rows t
      "FOR EACH s IN student SUCH THAT name(s) = 'Rodeck' LET major(s) = 'Databases' PRINT name(s), major(s) END"
  in
  Alcotest.(check string) "print sees the let" "Databases"
    (cell (List.hd out) "major(s)")

let suite =
  suite
  @ [
      "LET scalar", `Quick, test_let_scalar;
      "LET inherited scalar", `Quick, test_let_inherited_scalar;
      "LET rejects entity-valued", `Quick, test_let_rejects_entity_valued;
      "INCLUDE single-valued", `Quick, test_include_single_valued;
      "EXCLUDE single-valued", `Quick, test_exclude_single_valued;
      "INCLUDE/EXCLUDE via LINK", `Quick, test_include_exclude_link;
      "INCLUDE owner-held", `Quick, test_include_owner_held;
      "EXCLUDE owner-held", `Quick, test_exclude_owner_held;
      "selector must be unique", `Quick, test_selector_must_be_unique;
      "INCLUDE wrong range", `Quick, test_include_wrong_range;
      "mixed body actions", `Quick, test_mixed_body_actions;
    ]

(* --- set-expression aggregates ---------------------------------------------- *)

let test_aggregate_count () =
  let t, _ = fresh () in
  let out =
    rows t
      "FOR EACH f IN faculty SUCH THAT name(f) = 'Hsiao' PRINT COUNT(teaching(f)) END"
  in
  Alcotest.(check string) "Hsiao teaches three courses" "3"
    (cell (List.hd out) "COUNT(teaching(f))")

let test_aggregate_in_condition () =
  let t, _ = fresh () in
  let out =
    rows t
      "FOR EACH f IN faculty SUCH THAT COUNT(teaching(f)) >= 3 PRINT name(f) END"
  in
  let names = List.map (fun row -> cell row "name(f)") out in
  Alcotest.(check (list string)) "Hsiao and Washburn teach 3+" [ "Hsiao"; "Washburn" ] names

let test_aggregate_over_scalars () =
  let t, _ = fresh () in
  let out =
    rows t
      "FOR EACH d IN department SUCH THAT dname(d) = 'Computer Science' PRINT AVG(credits(offers(d))) END"
  in
  Alcotest.(check string) "all CS courses are 4 credits" "4"
    (cell (List.hd out) "AVG(credits(offers(d)))")

let test_schema_function_shadows_aggregate () =
  (* a schema function named 'count' must win over the aggregate *)
  let schema =
    Daplex.Ddl_parser.schema
      "DATABASE d\nTYPE thing IS ENTITY\n  count : INTEGER;\nEND ENTITY"
  in
  let transform = Transformer.Transform.transform schema in
  let kernel = Mapping.Kernel.single () in
  let _ =
    Mapping.Loader.load kernel transform
      [ { Daplex.University.row_type = "thing"; row_key = "t1"; row_isa = [];
          row_values = [ "count", Daplex.University.Scalar (Abdm.Value.Int 42) ] } ]
  in
  let engine = Daplex_dml.Engine.create kernel transform in
  match
    Daplex_dml.Engine.execute engine
      (Daplex_dml.Parser.stmt "FOR EACH x IN thing PRINT count(x) END")
  with
  | Ok (Daplex_dml.Engine.Printed [ row ]) ->
    Alcotest.(check bool) "function value, not aggregate" true
      (List.assoc_opt "count(x)" row = Some (Abdm.Value.Int 42))
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)
  | Error msg -> Alcotest.fail msg

let suite =
  suite
  @ [
      "aggregate COUNT over set", `Quick, test_aggregate_count;
      "aggregate in SUCH THAT", `Quick, test_aggregate_in_condition;
      "aggregate over scalar path", `Quick, test_aggregate_over_scalars;
      "schema function shadows aggregate", `Quick, test_schema_function_shadows_aggregate;
    ]

let test_destroy_all_without_such_that () =
  let t, _ = fresh () in
  (* all 12 courses are referenced (taught/offered); build two loose ones *)
  ignore (exec t "CREATE course (title = 'L1', semester = 'X', credits = 1)");
  ignore (exec t "CREATE course (title = 'L2', semester = 'X', credits = 1)");
  match exec t "DESTROY c IN course SUCH THAT semester(c) = 'X'" with
  | Ok (Daplex_dml.Engine.Destroyed 2) -> ()
  | Ok o -> Alcotest.failf "unexpected %s" (Daplex_dml.Engine.outcome_to_string o)
  | Error msg -> Alcotest.fail msg

let suite =
  suite @ [ "DESTROY by predicate", `Quick, test_destroy_all_without_such_that ]

(* --- the company fixture end-to-end: deep chains and self-m2m --------------- *)

let company_engine () =
  let schema = Daplex.Company.schema () in
  let transform = Transformer.Transform.transform schema in
  let kernel = Mapping.Kernel.single () in
  let row row_type row_key row_isa row_values =
    { Daplex.University.row_type; row_key; row_isa; row_values }
  in
  let str s = Daplex.University.Scalar (Abdm.Value.Str s) in
  let int i = Daplex.University.Scalar (Abdm.Value.Int i) in
  let rows =
    [
      row "client" "cl1" [] [ "cname", str "Navy";
        "contacts", Daplex.University.Scalars [ Abdm.Value.Str "ops" ];
        "partners", Daplex.University.Refs [ "cl2" ] ];
      row "client" "cl2" [] [ "cname", str "NSF";
        "contacts", Daplex.University.Scalars [];
        "partners", Daplex.University.Refs [ "cl1" ] ];
      row "client" "cl3" [] [ "cname", str "Loner";
        "contacts", Daplex.University.Scalars [];
        "partners", Daplex.University.Refs [] ];
      row "project" "pr1" [] [ "pname", str "MLDS"; "budget", int 100;
        "sponsor", Daplex.University.Ref "cl1";
        "staffed_by", Daplex.University.Refs [ "en1" ] ];
      row "office" "of1" [] [ "city", str "Monterey";
        "houses", Daplex.University.Refs [ "w1"; "w2" ] ];
      row "worker" "w1" [] [ "wname", str "Coker"; "badge", int 1 ];
      row "worker" "w2" [] [ "wname", str "Emdi"; "badge", int 2 ];
      row "engineer" "en1" [ "worker", "w1" ]
        [ "speciality", str "databases";
          "assigned", Daplex.University.Refs [ "pr1" ] ];
      row "senior_engineer" "se1" [ "engineer", "en1" ]
        [ "bonus", int 500; "mentor", Daplex.University.Ref "en1" ];
      row "manager" "m1" [ "worker", "w2" ]
        [ "level", int 3; "runs", Daplex.University.Refs [ "pr1" ] ];
    ]
  in
  let _keys = Mapping.Loader.load kernel transform rows in
  Daplex_dml.Engine.create kernel transform

let test_company_three_level_inheritance () =
  let t = company_engine () in
  (* wname lives on worker, two ISA hops above senior_engineer *)
  let out = rows t "FOR EACH s IN senior_engineer PRINT wname(s), bonus(s) END" in
  Alcotest.(check string) "name through two hops" "Coker"
    (cell (List.hd out) "wname(s)")

let test_company_self_m2m_navigation () =
  let t = company_engine () in
  let out =
    rows t "FOR EACH c IN client SUCH THAT cname(c) = 'Navy' PRINT cname(partners(c)) END"
  in
  (* the partner must be the OTHER client, not Navy itself *)
  Alcotest.(check string) "partner is NSF" "NSF"
    (cell (List.hd out) "cname(partners(c))")

let test_company_self_m2m_update () =
  let t = company_engine () in
  ignore
    (exec t
       "FOR EACH c IN client SUCH THAT cname(c) = 'Navy' INCLUDE partners(c) THE d IN client SUCH THAT cname(d) = 'Loner' END");
  let out =
    rows t "FOR EACH c IN client SUCH THAT cname(c) = 'Navy' PRINT cname(partners(c)) END"
  in
  let partners = cell (List.hd out) "cname(partners(c))" in
  Alcotest.(check bool) "both partners now" true
    (Daplex.Str_search.find partners "NSF" <> None
     && Daplex.Str_search.find partners "Loner" <> None);
  ignore
    (exec t
       "FOR EACH c IN client SUCH THAT cname(c) = 'Navy' EXCLUDE partners(c) THE d IN client SUCH THAT cname(d) = 'NSF' END");
  let out =
    rows t "FOR EACH c IN client SUCH THAT cname(c) = 'Navy' PRINT cname(partners(c)) END"
  in
  Alcotest.(check string) "only Loner remains" "Loner"
    (cell (List.hd out) "cname(partners(c))")

let test_company_owner_held_and_sv_on_subtype () =
  let t = company_engine () in
  let out =
    rows t "FOR EACH o IN office PRINT city(o), COUNT(houses(o)) END"
  in
  Alcotest.(check string) "office houses two workers" "2"
    (cell (List.hd out) "COUNT(houses(o))");
  let out =
    rows t "FOR EACH s IN senior_engineer PRINT speciality(mentor(s)) END"
  in
  Alcotest.(check string) "mentor reachable" "databases"
    (cell (List.hd out) "speciality(mentor(s))")

let suite =
  suite
  @ [
      "company: 3-level inheritance", `Quick, test_company_three_level_inheritance;
      "company: self m2m navigation", `Quick, test_company_self_m2m_navigation;
      "company: self m2m update", `Quick, test_company_self_m2m_update;
      "company: owner-held + sv on subtype", `Quick, test_company_owner_held_and_sv_on_subtype;
    ]
