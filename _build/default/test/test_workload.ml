(* Tests for the synthetic workload generator. *)

let spec =
  {
    Workload.file = "employee";
    records = 500;
    int_attrs = [ "salary", Workload.Uniform 100; "seq", Workload.Sequential ];
    str_attrs = [ "dept", 4 ];
  }

let test_deterministic () =
  let a = Workload.records ~seed:42 spec in
  let b = Workload.records ~seed:42 spec in
  Alcotest.(check int) "count" 500 (List.length a);
  Alcotest.(check bool) "same seed, same records" true
    (List.for_all2 Abdm.Record.equal a b);
  let c = Workload.records ~seed:43 spec in
  Alcotest.(check bool) "different seed differs" false
    (List.for_all2 Abdm.Record.equal a c)

let test_shapes () =
  let rs = Workload.records ~seed:1 spec in
  List.iteri
    (fun i r ->
      Alcotest.(check (option string)) "file" (Some "employee") (Abdm.Record.file r);
      begin
        match Abdm.Record.value_of r "salary" with
        | Some (Abdm.Value.Int v) ->
          Alcotest.(check bool) "uniform in range" true (v >= 0 && v < 100)
        | _ -> Alcotest.fail "salary missing"
      end;
      Alcotest.(check bool) "sequential attr" true
        (Abdm.Record.value_of r "seq" = Some (Abdm.Value.Int i));
      match Abdm.Record.value_of r "dept" with
      | Some (Abdm.Value.Str s) ->
        Alcotest.(check bool) "bounded cardinality" true
          (List.mem s [ "dept_0"; "dept_1"; "dept_2"; "dept_3" ])
      | _ -> Alcotest.fail "dept missing")
    rs

let test_zipf_skew () =
  let spec =
    { Workload.file = "f"; records = 2000;
      int_attrs = [ "z", Workload.Zipf (50, 1.2) ]; str_attrs = [] }
  in
  let rs = Workload.records ~seed:7 spec in
  let count v =
    List.length
      (List.filter (fun r -> Abdm.Record.value_of r "z" = Some (Abdm.Value.Int v)) rs)
  in
  Alcotest.(check bool) "rank 0 much hotter than rank 30" true
    (count 0 > 4 * max 1 (count 30))

let test_range_probe_selectivity () =
  let store = Abdm.Store.create () in
  let n = Workload.populate ~seed:5 spec (Abdm.Store.insert store) in
  Alcotest.(check int) "populated" 500 n;
  let probe = Workload.range_probe spec ~attr:"seq" ~selectivity:0.1 in
  match Abdl.Exec.run store probe with
  | Abdl.Exec.Rows rows ->
    let hit = List.length rows in
    Alcotest.(check bool)
      (Printf.sprintf "~10%% selectivity (got %d)" hit)
      true
      (hit >= 45 && hit <= 55)
  | r -> Alcotest.failf "unexpected %s" (Abdl.Exec.result_to_string r)

let test_rng_bounds () =
  let rng = Workload.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Workload.Rng.int rng 10 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 10);
    let f = Workload.Rng.float rng in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.)
  done;
  Alcotest.(check bool) "zero bound rejected" true
    (match Workload.Rng.int rng 0 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let suite =
  [
    "deterministic", `Quick, test_deterministic;
    "record shapes", `Quick, test_shapes;
    "zipf skew", `Quick, test_zipf_skew;
    "range probe selectivity", `Quick, test_range_probe_selectivity;
    "rng bounds", `Quick, test_rng_bounds;
  ]
