(* Tests for the hierarchical/DL-I language interface. *)

let medical_ddl =
  {|DATABASE medical
SEGMENT patient (pname CHAR(20), pid INT)
SEGMENT visit PARENT patient (vdate CHAR(10), cost INT)
SEGMENT treatment PARENT visit (drug CHAR(12))
SEGMENT insurer PARENT patient (company CHAR(20))
|}

let fresh () =
  let schema = Hierarchical.Ddl_parser.schema medical_ddl in
  let t = Hierarchical.Engine.create (Mapping.Kernel.single ()) schema in
  let setup =
    [
      "ISRT patient (pname = 'Doe', pid = 1)";
      "ISRT patient(pid = 1) visit (vdate = 'Jan', cost = 100)";
      "ISRT patient(pid = 1) visit (vdate = 'Feb', cost = 250)";
      "ISRT patient(pid = 1) insurer (company = 'Aetna')";
      "ISRT patient (pname = 'Roe', pid = 2)";
      "ISRT patient(pid = 2) visit (vdate = 'Mar', cost = 80)";
    ]
  in
  List.iter
    (fun src ->
      match Hierarchical.Engine.run t src with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" src msg)
    setup;
  (* treatments under Doe's Feb visit *)
  begin
    match Hierarchical.Engine.run t "GU patient(pid = 1) visit(vdate = 'Feb')" with
    | Ok (Hierarchical.Engine.Found _) -> ()
    | _ -> Alcotest.fail "setup GU failed"
  end;
  List.iter
    (fun src -> ignore (Hierarchical.Engine.run t src))
    [ "ISRT treatment (drug = 'aspirin')"; "ISRT treatment (drug = 'codeine')" ];
  t

type found = {
  segment : string;
  key : int;
  fields : (string * Abdm.Value.t) list;
}

let expect_found t src =
  match Hierarchical.Engine.run t src with
  | Ok (Hierarchical.Engine.Found { segment; key; fields }) ->
    { segment; key; fields }
  | Ok o -> Alcotest.failf "%s: expected Found, got %s" src (Hierarchical.Engine.outcome_to_string o)
  | Error msg -> Alcotest.failf "%s: %s" src msg

let expect_ge t src =
  match Hierarchical.Engine.run t src with
  | Ok Hierarchical.Engine.Not_found -> ()
  | Ok o -> Alcotest.failf "%s: expected GE, got %s" src (Hierarchical.Engine.outcome_to_string o)
  | Error msg -> Alcotest.failf "%s: %s" src msg

let field f fields =
  match List.assoc_opt f fields with
  | Some v -> Abdm.Value.to_display v
  | None -> Alcotest.failf "missing field %s" f

(* --- DDL -------------------------------------------------------------- *)

let test_ddl () =
  let schema = Hierarchical.Ddl_parser.schema medical_ddl in
  Alcotest.(check int) "4 segments" 4 (List.length schema.Hierarchical.Types.segments);
  Alcotest.(check (list string)) "roots" [ "patient" ]
    (List.map
       (fun (s : Hierarchical.Types.segment) -> s.seg_name)
       (Hierarchical.Types.roots schema));
  Alcotest.(check (list string)) "children of patient" [ "visit"; "insurer" ]
    (List.map
       (fun (s : Hierarchical.Types.segment) -> s.seg_name)
       (Hierarchical.Types.children schema "patient"));
  Alcotest.(check (list string)) "ancestors of treatment"
    [ "visit"; "patient" ]
    (Hierarchical.Types.ancestors schema "treatment")

let test_ddl_errors () =
  let bad src =
    match Hierarchical.Ddl_parser.schema src with
    | exception Hierarchical.Ddl_parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing database" true (bad "SEGMENT a (x INT)");
  Alcotest.(check bool) "parent before child" true
    (bad "DATABASE d\nSEGMENT b PARENT a (x INT)\nSEGMENT a (y INT)");
  Alcotest.(check bool) "no root" true
    (bad "DATABASE d");
  Alcotest.(check bool) "duplicate segment" true
    (bad "DATABASE d\nSEGMENT a (x INT)\nSEGMENT a (y INT)")

(* --- calls ------------------------------------------------------------ *)

let test_gu_path () =
  let t = fresh () in
  let f = expect_found t "GU patient(pid = 1) visit(cost > 200)" in
  Alcotest.(check string) "segment" "visit" f.segment;
  Alcotest.(check string) "vdate" "Feb" (field "vdate" f.fields);
  (* qualified path must bind: Roe has no visit over 200 *)
  expect_ge t "GU patient(pid = 2) visit(cost > 200)"

let test_gn_sequence () =
  let t = fresh () in
  let f = expect_found t "GU patient(pid = 1)" in
  Alcotest.(check string) "start at Doe" "Doe" (field "pname" f.fields);
  (* hierarchic order: Doe, Jan visit, Feb visit, treatments, insurer, Roe... *)
  let segs = ref [] in
  let rec loop () =
    match Hierarchical.Engine.run t "GN" with
    | Ok (Hierarchical.Engine.Found f) ->
      segs := f.segment :: !segs;
      loop ()
    | Ok Hierarchical.Engine.Not_found -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Hierarchical.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  in
  loop ();
  Alcotest.(check (list string)) "hierarchic sequence after Doe"
    [ "visit"; "visit"; "treatment"; "treatment"; "insurer"; "patient"; "visit" ]
    (List.rev !segs)

let test_gn_with_ssa () =
  let t = fresh () in
  let _ = expect_found t "GU patient(pid = 1)" in
  let f = expect_found t "GN visit(cost > 90)" in
  Alcotest.(check string) "first expensive visit" "Jan" (field "vdate" f.fields);
  let f = expect_found t "GN visit(cost > 90)" in
  Alcotest.(check string) "next expensive visit" "Feb" (field "vdate" f.fields);
  expect_ge t "GN visit(cost > 90)"

let test_gnp_within_parent () =
  let t = fresh () in
  let _ = expect_found t "GU patient(pid = 1)" in
  (* all of Doe's visits, but not Roe's *)
  let f = expect_found t "GNP visit" in
  Alcotest.(check string) "Jan" "Jan" (field "vdate" f.fields);
  let f = expect_found t "GNP visit" in
  Alcotest.(check string) "Feb" "Feb" (field "vdate" f.fields);
  expect_ge t "GNP visit";
  (* GNP without SSA walks every descendant of the parent *)
  let _ = expect_found t "GU patient(pid = 2)" in
  let f = expect_found t "GNP" in
  Alcotest.(check string) "Roe's visit" "visit" f.segment;
  expect_ge t "GNP"

let test_gnp_requires_parentage () =
  let schema = Hierarchical.Ddl_parser.schema medical_ddl in
  let t = Hierarchical.Engine.create (Mapping.Kernel.single ()) schema in
  match Hierarchical.Engine.run t "GNP" with
  | Error msg ->
    Alcotest.(check bool) "mentions parentage" true
      (Daplex.Str_search.find msg "parentage" <> None)
  | Ok o -> Alcotest.failf "unexpected %s" (Hierarchical.Engine.outcome_to_string o)

let test_isrt_under_parentage () =
  let t = fresh () in
  let _ = expect_found t "GU patient(pid = 2)" in
  (* path-less ISRT of a child uses current parentage *)
  begin
    match Hierarchical.Engine.run t "ISRT visit (vdate = 'Apr', cost = 10)" with
    | Ok (Hierarchical.Engine.Inserted _) -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Hierarchical.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  end;
  let f = expect_found t "GU patient(pid = 2) visit(vdate = 'Apr')" in
  Alcotest.(check string) "cost stored" "10" (field "cost" f.fields)

let test_isrt_errors () =
  let t = fresh () in
  let bad src =
    match Hierarchical.Engine.run t src with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "unknown segment" true (bad "ISRT ghost (x = 1)");
  Alcotest.(check bool) "unknown field" true (bad "ISRT patient (age = 1)");
  Alcotest.(check bool) "root with path" true
    (bad "ISRT patient(pid = 1) patient (pname = 'x', pid = 3)");
  Alcotest.(check bool) "missing parent path" true
    (bad "GU patient(pid = 99)" || bad "ISRT treatment (drug = 'x')")

let test_repl () =
  let t = fresh () in
  let _ = expect_found t "GU patient(pid = 1) visit(vdate = 'Jan')" in
  begin
    match Hierarchical.Engine.run t "REPL (cost = 120)" with
    | Ok (Hierarchical.Engine.Replaced 1) -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Hierarchical.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  end;
  let f = expect_found t "GU patient(pid = 1) visit(vdate = 'Jan')" in
  Alcotest.(check string) "cost updated" "120" (field "cost" f.fields)

let test_dlet_subtree () =
  let t = fresh () in
  let _ = expect_found t "GU patient(pid = 1) visit(vdate = 'Feb')" in
  begin
    match Hierarchical.Engine.run t "DLET" with
    | Ok (Hierarchical.Engine.Deleted 3) -> ()  (* visit + 2 treatments *)
    | Ok o -> Alcotest.failf "unexpected %s" (Hierarchical.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  end;
  expect_ge t "GU patient(pid = 1) visit(vdate = 'Feb')";
  expect_ge t "GU treatment(drug = 'aspirin')"

let test_parser_errors () =
  let bad src =
    match Hierarchical.Dli_parser.call src with
    | exception Hierarchical.Dli_parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown call" true (bad "GET patient");
  Alcotest.(check bool) "GU without SSA" true (bad "GU");
  Alcotest.(check bool) "ISRT without fields" true (bad "ISRT patient");
  Alcotest.(check bool) "qualified ISRT target" true
    (bad "ISRT patient(pid = 1) (pname = 'x')")

let suite =
  [
    "ddl", `Quick, test_ddl;
    "ddl errors", `Quick, test_ddl_errors;
    "GU path", `Quick, test_gu_path;
    "GN hierarchic sequence", `Quick, test_gn_sequence;
    "GN with SSA", `Quick, test_gn_with_ssa;
    "GNP within parent", `Quick, test_gnp_within_parent;
    "GNP requires parentage", `Quick, test_gnp_requires_parentage;
    "ISRT under parentage", `Quick, test_isrt_under_parentage;
    "ISRT errors", `Quick, test_isrt_errors;
    "REPL", `Quick, test_repl;
    "DLET subtree", `Quick, test_dlet_subtree;
    "parser errors", `Quick, test_parser_errors;
  ]
