(* Tests for the Chapter V functional-to-network schema transformation,
   checked against the structure of the paper's Fig. 5.1. *)

let transform () = Transformer.Transform.transform (Daplex.University.schema ())

let find_set t name =
  match Network.Schema.find_set t.Transformer.Transform.net name with
  | Some s -> s
  | None -> Alcotest.failf "set %s missing" name

let find_record t name =
  match Network.Schema.find_record t.Transformer.Transform.net name with
  | Some r -> r
  | None -> Alcotest.failf "record %s missing" name

let test_records_created () =
  let t = transform () in
  Alcotest.(check (list string)) "records incl. LINK"
    [ "person"; "course"; "department"; "employee"; "support_staff";
      "faculty"; "student"; "LINK_1" ]
    (Network.Schema.record_names t.net)

let test_entity_system_sets () =
  let t = transform () in
  List.iter
    (fun entity ->
      let s = find_set t ("system_" ^ entity) in
      Alcotest.(check string) "owner SYSTEM" "SYSTEM" s.set_owner;
      Alcotest.(check string) "member" entity s.set_member;
      Alcotest.(check bool) "automatic" true
        (s.set_insertion = Network.Types.Ins_automatic);
      Alcotest.(check bool) "fixed" true (s.set_retention = Network.Types.Ret_fixed))
    [ "person"; "course"; "department" ];
  (* subtypes get ISA sets, not SYSTEM sets *)
  Alcotest.(check bool) "no system_faculty" true
    (Network.Schema.find_set (transform ()).net "system_faculty" = None)

let test_isa_sets () =
  let t = transform () in
  List.iter
    (fun (name, owner, member) ->
      let s = find_set t name in
      Alcotest.(check string) "owner" owner s.set_owner;
      Alcotest.(check string) "member" member s.set_member;
      Alcotest.(check bool) "automatic/fixed" true
        (s.set_insertion = Network.Types.Ins_automatic
         && s.set_retention = Network.Types.Ret_fixed);
      Alcotest.(check bool) "origin isa" true
        (Transformer.Transform.origin_of_set t name
         = Some Transformer.Transform.O_isa))
    [
      "person_employee", "person", "employee";
      "employee_support_staff", "employee", "support_staff";
      "employee_faculty", "employee", "faculty";
      "person_student", "person", "student";
    ]

(* The function sets must match the paper's Fig. 5.1 exactly. *)
let test_function_sets_match_fig_5_1 () =
  let t = transform () in
  List.iter
    (fun (name, owner, member) ->
      let s = find_set t name in
      Alcotest.(check string) (name ^ " owner") owner s.set_owner;
      Alcotest.(check string) (name ^ " member") member s.set_member;
      Alcotest.(check bool) (name ^ " manual/optional") true
        (s.set_insertion = Network.Types.Ins_manual
         && s.set_retention = Network.Types.Ret_optional);
      Alcotest.(check bool) (name ^ " by application") true
        (s.set_selection = Network.Types.Sel_by_application))
    [
      "supervisor", "employee", "support_staff";
      "dept", "department", "faculty";
      "advisor", "faculty", "student";
      "teaching", "faculty", "LINK_1";
      "taught_by", "course", "LINK_1";
      "offers", "department", "course";
    ]

let test_many_to_many_link () =
  let t = transform () in
  match t.links with
  | [ link ] ->
    Alcotest.(check string) "link record" "LINK_1" link.link_record;
    let sides =
      List.sort compare [ fst link.link_side_a; fst link.link_side_b ]
    in
    Alcotest.(check (list string)) "sides" [ "taught_by"; "teaching" ] sides;
    let r = find_record t "LINK_1" in
    Alcotest.(check int) "link has no items" 0 (List.length r.rec_attributes)
  | links -> Alcotest.failf "expected 1 link, got %d" (List.length links)

let test_scalar_functions_become_items () =
  let t = transform () in
  let r = find_record t "faculty" in
  Alcotest.(check (list string)) "faculty items" [ "rank" ]
    (List.map (fun (a : Network.Types.attribute) -> a.attr_name) r.rec_attributes);
  let rank =
    match Network.Types.find_attribute r "rank" with
    | Some a -> a
    | None -> Alcotest.fail "rank missing"
  in
  (* enumeration maps to CHARACTER sized to the longest member *)
  Alcotest.(check bool) "enum as character" true
    (rank.attr_type = Network.Types.A_string);
  Alcotest.(check int) "length of 'instructor'" 10 rank.attr_length

let test_scalar_multivalued_no_duplicates () =
  let t = transform () in
  let r = find_record t "employee" in
  match Network.Types.find_attribute r "dependents" with
  | Some a ->
    Alcotest.(check bool) "dup not allowed" false a.attr_dup_allowed
  | None -> Alcotest.fail "dependents item missing"

let test_uniqueness_mapped () =
  let t = transform () in
  let r = find_record t "course" in
  List.iter
    (fun item ->
      match Network.Types.find_attribute r item with
      | Some a ->
        Alcotest.(check bool) (item ^ " unique") false a.attr_dup_allowed
      | None -> Alcotest.failf "%s missing" item)
    [ "title"; "semester" ];
  match Network.Types.find_attribute r "credits" with
  | Some a -> Alcotest.(check bool) "credits not unique" true a.attr_dup_allowed
  | None -> Alcotest.fail "credits missing"

let test_overlap_table () =
  let t = transform () in
  let ov = t.overlap in
  Alcotest.(check bool) "declared pair" true
    (Transformer.Overlap_table.allowed ov "student" "support_staff");
  Alcotest.(check bool) "disjoint siblings" false
    (Transformer.Overlap_table.allowed ov "student" "faculty");
  Alcotest.(check bool) "isa chain allowed" true
    (Transformer.Overlap_table.allowed ov "faculty" "employee");
  Alcotest.(check bool) "same type allowed" true
    (Transformer.Overlap_table.allowed ov "student" "student")

let test_produced_schema_validates () =
  let t = transform () in
  Alcotest.(check bool) "network schema valid" true
    (Network.Schema.validate t.net = Ok ())

let test_helpers () =
  let t = transform () in
  Alcotest.(check int) "student has 1 isa set" 1
    (List.length (Transformer.Transform.isa_sets_of_member t "student"));
  Alcotest.(check bool) "person has system set" true
    (Transformer.Transform.system_set_of t "person" <> None);
  Alcotest.(check bool) "student has no system set" true
    (Transformer.Transform.system_set_of t "student" = None)

let test_set_name_collision_resolved () =
  (* two types declaring a same-named single-valued function must yield
     distinct set names *)
  let s =
    Daplex.Ddl_parser.schema
      {|DATABASE d
TYPE a IS ENTITY
  home : b;
END ENTITY
TYPE b IS ENTITY
  name : STRING(5);
END ENTITY
TYPE c IS ENTITY
  home : b;
END ENTITY
|}
  in
  let t = Transformer.Transform.transform s in
  let sets = Network.Schema.set_names t.Transformer.Transform.net in
  Alcotest.(check bool) "home present" true (List.mem "home" sets);
  Alcotest.(check bool) "home_2 present" true (List.mem "home_2" sets)

let suite =
  [
    "records created", `Quick, test_records_created;
    "entity system sets", `Quick, test_entity_system_sets;
    "isa sets", `Quick, test_isa_sets;
    "function sets match Fig 5.1", `Quick, test_function_sets_match_fig_5_1;
    "many-to-many LINK", `Quick, test_many_to_many_link;
    "scalar functions become items", `Quick, test_scalar_functions_become_items;
    "scalar multi-valued: no duplicates", `Quick, test_scalar_multivalued_no_duplicates;
    "uniqueness mapped", `Quick, test_uniqueness_mapped;
    "overlap table", `Quick, test_overlap_table;
    "produced schema validates", `Quick, test_produced_schema_validates;
    "helpers", `Quick, test_helpers;
    "set name collision resolved", `Quick, test_set_name_collision_resolved;
  ]

(* --- property tests over random functional schemas ------------------------- *)

(* Generate small valid Daplex schemas: entity types, subtypes over earlier
   types, and functions with globally unique names whose ranges reference
   declared types. *)
let gen_schema =
  let open QCheck2.Gen in
  let scalar_range =
    oneof
      [ return Daplex.Types.R_int; return Daplex.Types.R_float;
        map (fun n -> Daplex.Types.R_string n) (int_range 0 20) ]
  in
  let* n_entities = int_range 1 4 in
  let* n_subtypes = int_range 0 3 in
  let entity_names = List.init n_entities (Printf.sprintf "ent%d") in
  let sub_names = List.init n_subtypes (Printf.sprintf "sub%d") in
  let fn_counter = ref 0 in
  let fresh_fn () =
    incr fn_counter;
    Printf.sprintf "fn%d" !fn_counter
  in
  (* functions for one type: scalars plus optional entity-valued ones *)
  let gen_functions all_types =
    let* n_scalar = int_range 0 3 in
    let* scalars =
      flatten_l
        (List.init n_scalar (fun _ ->
             let* range = scalar_range in
             let* set = bool in
             return { Daplex.Types.fn_name = fresh_fn (); fn_range = range; fn_set = set }))
    in
    let* n_entity_fns = int_range 0 2 in
    let* entity_fns =
      flatten_l
        (List.init n_entity_fns (fun _ ->
             let* target = oneofl all_types in
             let* set = bool in
             return
               { Daplex.Types.fn_name = fresh_fn ();
                 fn_range = Daplex.Types.R_named target; fn_set = set }))
    in
    return (scalars @ entity_fns)
  in
  let all_types = entity_names @ sub_names in
  let* entities =
    flatten_l
      (List.map
         (fun name ->
           let* fns = gen_functions all_types in
           return { Daplex.Types.ent_name = name; ent_functions = fns })
         entity_names)
  in
  let* subtypes =
    flatten_l
      (List.mapi
         (fun i name ->
           (* supertypes drawn from entities and earlier subtypes *)
           let candidates =
             entity_names @ List.filteri (fun j _ -> j < i) sub_names
           in
           let* n_supers = int_range 1 (min 2 (List.length candidates)) in
           let* shuffled = shuffle_l candidates in
           let supers =
             List.filteri (fun j _ -> j < n_supers) shuffled
             |> List.sort_uniq compare
           in
           let* fns = gen_functions all_types in
           return
             { Daplex.Types.sub_name = name; sub_supertypes = supers;
               sub_functions = fns })
         sub_names)
  in
  return
    (Daplex.Schema.make ~name:"random" ~entities ~subtypes ())

let prop_transform_valid =
  QCheck2.Test.make ~name:"random schemas transform to valid network schemas"
    ~count:200 gen_schema
    (fun schema ->
      match Daplex.Schema.validate schema with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let t = Transformer.Transform.transform schema in
        Network.Schema.validate t.Transformer.Transform.net = Ok ())

let prop_transform_structure =
  QCheck2.Test.make
    ~name:"transformation invariants: records, SYSTEM/ISA sets, function sets"
    ~count:200 gen_schema
    (fun schema ->
      match Daplex.Schema.validate schema with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let t = Transformer.Transform.transform schema in
        let net = t.Transformer.Transform.net in
        let origin = Transformer.Transform.origin_of_set t in
        (* 1. a record type per entity type and subtype *)
        let records_ok =
          List.for_all
            (fun name -> Network.Schema.find_record net name <> None)
            (Daplex.Schema.all_type_names schema)
        in
        (* 2. every entity type is member of exactly one SYSTEM set *)
        let system_ok =
          List.for_all
            (fun (e : Daplex.Types.entity) ->
              let sets =
                List.filter
                  (fun (s : Network.Types.set_type) ->
                    String.equal s.set_member e.ent_name
                    && origin s.set_name = Some Transformer.Transform.O_system)
                  net.Network.Schema.sets
              in
              List.length sets = 1
              && (List.hd sets).set_insertion = Network.Types.Ins_automatic
              && (List.hd sets).set_retention = Network.Types.Ret_fixed)
            schema.Daplex.Schema.entities
        in
        (* 3. every subtype has one ISA set per supertype *)
        let isa_ok =
          List.for_all
            (fun (sub : Daplex.Types.subtype) ->
              List.for_all
                (fun super ->
                  List.exists
                    (fun (s : Network.Types.set_type) ->
                      String.equal s.set_member sub.sub_name
                      && String.equal s.set_owner super
                      && origin s.set_name = Some Transformer.Transform.O_isa)
                    net.Network.Schema.sets)
                sub.sub_supertypes)
            schema.Daplex.Schema.subtypes
        in
        (* 4. every entity-valued function got its set (or link pair);
              every scalar function became an item with the right dup flag *)
        let functions_ok =
          List.for_all
            (fun tref ->
              let tname = Daplex.Schema.type_name tref in
              let record =
                match Network.Schema.find_record net tname with
                | Some r -> r
                | None -> { Network.Types.rec_name = tname; rec_attributes = [] }
              in
              List.for_all
                (fun (fn : Daplex.Types.function_decl) ->
                  match Daplex.Schema.classify schema fn with
                  | Daplex.Schema.C_scalar ->
                    (match Network.Types.find_attribute record fn.fn_name with
                     | Some a -> a.attr_dup_allowed
                     | None -> false)
                  | Daplex.Schema.C_scalar_multi ->
                    (match Network.Types.find_attribute record fn.fn_name with
                     | Some a -> not a.attr_dup_allowed
                     | None -> false)
                  | Daplex.Schema.C_single_valued range ->
                    (match
                       Transformer.Transform.set_of_function t
                         ~type_name:tname ~fn:fn.fn_name
                     with
                     | Some s ->
                       String.equal s.set_owner range
                       && String.equal s.set_member tname
                     | None -> false)
                  | Daplex.Schema.C_multi_valued _ ->
                    Transformer.Transform.set_of_function t ~type_name:tname
                      ~fn:fn.fn_name
                    <> None)
                (Daplex.Schema.functions_of tref))
            (List.map (fun e -> Daplex.Schema.Entity e) schema.Daplex.Schema.entities
             @ List.map (fun s -> Daplex.Schema.Subtype s) schema.Daplex.Schema.subtypes)
        in
        records_ok && system_ok && isa_ok && functions_ok)

let prop_transform_ddl_roundtrip =
  QCheck2.Test.make
    ~name:"random schemas: Daplex DDL pretty-print re-parses identically"
    ~count:200 gen_schema
    (fun schema ->
      match Daplex.Schema.validate schema with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let ddl = Daplex.Schema.to_ddl schema in
        let reparsed = Daplex.Ddl_parser.schema ddl in
        String.equal ddl (Daplex.Schema.to_ddl reparsed))

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_transform_valid;
      QCheck_alcotest.to_alcotest prop_transform_structure;
      QCheck_alcotest.to_alcotest prop_transform_ddl_roundtrip;
    ]

(* --- the company fixture: corners the University schema misses ------------- *)

let company () = Transformer.Transform.transform (Daplex.Company.schema ())

let test_company_three_level_isa () =
  let t = company () in
  let isa name owner member =
    match Network.Schema.find_set t.Transformer.Transform.net name with
    | Some s ->
      Alcotest.(check string) (name ^ " owner") owner s.set_owner;
      Alcotest.(check string) (name ^ " member") member s.set_member
    | None -> Alcotest.failf "set %s missing" name
  in
  isa "worker_engineer" "worker" "engineer";
  isa "engineer_senior_engineer" "engineer" "senior_engineer";
  isa "worker_manager" "worker" "manager";
  (* the chain is transitive through instances, not sets: no
     worker_senior_engineer set *)
  Alcotest.(check bool) "no skip-level ISA set" true
    (Network.Schema.find_set t.Transformer.Transform.net "worker_senior_engineer"
     = None)

let test_company_two_links_incl_self () =
  let t = company () in
  Alcotest.(check int) "two LINK records" 2
    (List.length t.Transformer.Transform.links);
  (* the self-referential many-to-many: both sides are client.partners *)
  let self_link =
    List.find_opt
      (fun (l : Transformer.Transform.link) ->
        String.equal (snd l.link_side_a) "client"
        && String.equal (snd l.link_side_b) "client")
      t.Transformer.Transform.links
  in
  begin
    match self_link with
    | Some l ->
      Alcotest.(check string) "side a fn" "partners" (fst l.link_side_a);
      Alcotest.(check string) "side b fn" "partners" (fst l.link_side_b);
      (* the two sets got distinct names *)
      let sets =
        List.filter
          (fun (s : Network.Types.set_type) ->
            String.equal s.set_member l.link_record)
          t.Transformer.Transform.net.Network.Schema.sets
      in
      Alcotest.(check int) "two sets into the link" 2 (List.length sets);
      let names = List.map (fun (s : Network.Types.set_type) -> s.set_name) sets in
      Alcotest.(check bool) "distinct set names" true
        (List.length (List.sort_uniq compare names) = 2)
    | None -> Alcotest.fail "self link missing"
  end

let test_company_one_to_many_owner_held () =
  let t = company () in
  List.iter
    (fun (set_name, owner, member) ->
      match Network.Schema.find_set t.Transformer.Transform.net set_name with
      | Some s ->
        Alcotest.(check string) "owner" owner s.set_owner;
        Alcotest.(check string) "member" member s.set_member;
        Alcotest.(check bool) "owner-held origin" true
          (match Transformer.Transform.origin_of_set t set_name with
           | Some (Transformer.Transform.O_function_owner _) -> true
           | _ -> false)
      | None -> Alcotest.failf "set %s missing" set_name)
    [ "runs", "manager", "project"; "houses", "office", "worker" ]

let test_company_sv_into_subtype_range () =
  (* mentor : engineer declared on senior_engineer — the set's owner is
     the range (engineer), its member the declaring subtype *)
  let t = company () in
  match Network.Schema.find_set t.Transformer.Transform.net "mentor" with
  | Some s ->
    Alcotest.(check string) "owner" "engineer" s.set_owner;
    Alcotest.(check string) "member" "senior_engineer" s.set_member
  | None -> Alcotest.fail "mentor set missing"

let test_company_overlap_semantics () =
  let t = company () in
  let ov = t.Transformer.Transform.overlap in
  Alcotest.(check bool) "engineer ~ manager declared" true
    (Transformer.Overlap_table.allowed ov "engineer" "manager");
  (* the declaration does not extend to engineer's subtype *)
  Alcotest.(check bool) "senior_engineer vs manager disjoint" false
    (Transformer.Overlap_table.allowed ov "senior_engineer" "manager");
  Alcotest.(check bool) "ISA chain never conflicts" true
    (Transformer.Overlap_table.allowed ov "senior_engineer" "engineer")

let test_company_uniqueness_on_subhierarchy () =
  let t = company () in
  match Network.Schema.find_record t.Transformer.Transform.net "worker" with
  | Some r ->
    (match Network.Types.find_attribute r "badge" with
     | Some a -> Alcotest.(check bool) "badge unique" false a.attr_dup_allowed
     | None -> Alcotest.fail "badge missing")
  | None -> Alcotest.fail "worker record missing"

let suite =
  suite
  @ [
      "company: three-level ISA", `Quick, test_company_three_level_isa;
      "company: two LINKs incl. self m2m", `Quick, test_company_two_links_incl_self;
      "company: one-to-many owner-held", `Quick, test_company_one_to_many_owner_held;
      "company: sv into subtype range", `Quick, test_company_sv_into_subtype_range;
      "company: overlap semantics", `Quick, test_company_overlap_semantics;
      "company: uniqueness", `Quick, test_company_uniqueness_on_subhierarchy;
    ]
