(* Tests for the functional (Daplex) data model: DDL parser, schema
   queries, function classification, constraints. *)

let university () = Daplex.University.schema ()

let test_university_parses () =
  let s = university () in
  Alcotest.(check string) "name" "university" s.Daplex.Schema.name;
  Alcotest.(check (list string)) "entities" [ "person"; "course"; "department" ]
    (List.map (fun (e : Daplex.Types.entity) -> e.ent_name) s.entities);
  Alcotest.(check (list string)) "subtypes"
    [ "employee"; "support_staff"; "faculty"; "student" ]
    (List.map (fun (t : Daplex.Types.subtype) -> t.sub_name) s.subtypes);
  Alcotest.(check int) "one uniqueness" 1 (List.length s.uniqueness);
  Alcotest.(check int) "one overlap" 1 (List.length s.overlaps)

let test_classification () =
  let s = university () in
  let classify tname fname =
    match Daplex.Schema.find_function s tname fname with
    | Some fn -> Daplex.Schema.classify s fn
    | None -> Alcotest.failf "no function %s.%s" tname fname
  in
  Alcotest.(check bool) "name scalar" true
    (classify "person" "name" = Daplex.Schema.C_scalar);
  Alcotest.(check bool) "rank scalar (enum)" true
    (classify "faculty" "rank" = Daplex.Schema.C_scalar);
  Alcotest.(check bool) "dependents scalar multi" true
    (classify "employee" "dependents" = Daplex.Schema.C_scalar_multi);
  Alcotest.(check bool) "advisor single-valued" true
    (classify "student" "advisor" = Daplex.Schema.C_single_valued "faculty");
  Alcotest.(check bool) "teaching multi-valued" true
    (classify "faculty" "teaching" = Daplex.Schema.C_multi_valued "course");
  Alcotest.(check bool) "offers multi-valued" true
    (classify "department" "offers" = Daplex.Schema.C_multi_valued "course")

let test_hierarchy () =
  let s = university () in
  Alcotest.(check (list string)) "faculty ancestors" [ "employee"; "person" ]
    (Daplex.Schema.ancestors s "faculty");
  Alcotest.(check (list string)) "person subtypes"
    [ "employee"; "student" ]
    (List.map
       (fun (t : Daplex.Types.subtype) -> t.sub_name)
       (Daplex.Schema.subtypes_of s "person"));
  Alcotest.(check bool) "faculty terminal" true (Daplex.Schema.is_terminal s "faculty");
  Alcotest.(check bool) "person not terminal" false (Daplex.Schema.is_terminal s "person");
  Alcotest.(check bool) "employee not terminal" false
    (Daplex.Schema.is_terminal s "employee")

let test_constraints () =
  let s = university () in
  Alcotest.(check (list string)) "unique functions of course"
    [ "title"; "semester" ]
    (Daplex.Schema.unique_functions s "course");
  Alcotest.(check bool) "declared overlap" true
    (Daplex.Schema.overlap_allowed s "student" "support_staff");
  Alcotest.(check bool) "symmetric" true
    (Daplex.Schema.overlap_allowed s "support_staff" "student");
  Alcotest.(check bool) "undeclared pair not allowed" false
    (Daplex.Schema.overlap_allowed s "student" "faculty")

let test_resolve_range () =
  let s = university () in
  begin
    match Daplex.Schema.resolve_range s (Daplex.Types.R_named "rank_type") with
    | Daplex.Schema.Rs_scalar { kind = Daplex.Types.K_enum; values; length } ->
      Alcotest.(check int) "4 members" 4 (List.length values);
      Alcotest.(check int) "longest member" 10 length
    | _ -> Alcotest.fail "rank_type should be enum"
  end;
  begin
    match Daplex.Schema.resolve_range s (Daplex.Types.R_named "faculty") with
    | Daplex.Schema.Rs_entity "faculty" -> ()
    | _ -> Alcotest.fail "faculty should be an entity range"
  end;
  Alcotest.(check bool) "unknown range raises" true
    (match Daplex.Schema.resolve_range s (Daplex.Types.R_named "ghost") with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_ddl_roundtrip () =
  let s = university () in
  let reparsed = Daplex.Ddl_parser.schema (Daplex.Schema.to_ddl s) in
  Alcotest.(check string) "ddl stable" (Daplex.Schema.to_ddl s)
    (Daplex.Schema.to_ddl reparsed)

let test_non_entity_declarations () =
  let s =
    Daplex.Ddl_parser.schema
      {|DATABASE t
TYPE color IS (red, green, blue)
TYPE small IS INTEGER RANGE 1..9
TYPE tag IS STRING(8)
TYPE flag IS BOOLEAN
TYPE code IS SUBTYPE OF tag
TYPE alias IS NEW tag
TYPE thing IS ENTITY
  c : color;
  n : small;
  t : tag;
END ENTITY
|}
  in
  let ne name =
    match Daplex.Schema.find_non_entity s name with
    | Some ne -> ne
    | None -> Alcotest.failf "missing non-entity %s" name
  in
  Alcotest.(check bool) "enum" true ((ne "color").ne_kind = Daplex.Types.K_enum);
  Alcotest.(check bool) "int range" true ((ne "small").ne_range = Some (1, 9));
  Alcotest.(check int) "string len" 8 (ne "tag").ne_length;
  Alcotest.(check bool) "subtype class" true
    ((ne "code").ne_class = Daplex.Types.NE_subtype);
  Alcotest.(check bool) "derived class" true
    ((ne "alias").ne_class = Daplex.Types.NE_derived)

let test_ddl_errors () =
  let bad src =
    match Daplex.Ddl_parser.schema src with
    | exception Daplex.Ddl_parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing database" true (bad "TYPE x IS ENTITY\nEND ENTITY");
  Alcotest.(check bool) "unknown supertype" true
    (bad "DATABASE d\nTYPE x IS ghost ENTITY\nEND ENTITY");
  Alcotest.(check bool) "unknown function range" true
    (bad "DATABASE d\nTYPE x IS ENTITY\n  f : ghost;\nEND ENTITY");
  Alcotest.(check bool) "duplicate type name" true
    (bad "DATABASE d\nTYPE x IS ENTITY\nEND ENTITY\nTYPE x IS ENTITY\nEND ENTITY");
  Alcotest.(check bool) "unique on unknown type" true
    (bad "DATABASE d\nUNIQUE f WITHIN ghost");
  Alcotest.(check bool) "unique on undeclared function" true
    (bad "DATABASE d\nTYPE x IS ENTITY\n  f : INTEGER;\nEND ENTITY\nUNIQUE g WITHIN x");
  Alcotest.(check bool) "overlap names non-subtype" true
    (bad "DATABASE d\nTYPE x IS ENTITY\nEND ENTITY\nOVERLAP x WITH x")

let test_owner_of_function () =
  let s = university () in
  match Daplex.Schema.owner_of_function s "advisor" with
  | Some (tref, fn) ->
    Alcotest.(check string) "declared on student" "student"
      (Daplex.Schema.type_name tref);
    Alcotest.(check bool) "not set valued" false fn.fn_set
  | None -> Alcotest.fail "advisor not found"

let test_scaled_rows () =
  let rows = Daplex.University.scaled_rows 18 in
  let students =
    List.filter
      (fun (r : Daplex.University.row) -> String.equal r.row_type "student")
      rows
  in
  Alcotest.(check int) "3 replicas of 6 students" 18 (List.length students);
  (* keys must stay unique *)
  let keys = List.map (fun (r : Daplex.University.row) -> r.row_key) students in
  Alcotest.(check int) "unique keys" 18 (List.length (List.sort_uniq compare keys))

let suite =
  [
    "university parses", `Quick, test_university_parses;
    "function classification", `Quick, test_classification;
    "hierarchy", `Quick, test_hierarchy;
    "constraints", `Quick, test_constraints;
    "resolve range", `Quick, test_resolve_range;
    "ddl roundtrip", `Quick, test_ddl_roundtrip;
    "non-entity declarations", `Quick, test_non_entity_declarations;
    "ddl errors", `Quick, test_ddl_errors;
    "owner of function", `Quick, test_owner_of_function;
    "scaled rows", `Quick, test_scaled_rows;
  ]
