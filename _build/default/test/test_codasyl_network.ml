(* The CODASYL-DML interface against a NATIVE network database — the
   AB(network) target (Emdi's translation), where every non-SYSTEM set is
   member-held. *)

let parts_ddl =
  {|SCHEMA NAME IS parts

RECORD NAME IS supplier
  ITEM sname TYPE IS CHARACTER 20
  ITEM city TYPE IS CHARACTER 15
  DUPLICATES ARE NOT ALLOWED FOR sname

RECORD NAME IS part
  ITEM pname TYPE IS CHARACTER 20
  ITEM weight TYPE IS FIXED

SET NAME IS system_supplier
  OWNER IS SYSTEM
  MEMBER IS supplier
  INSERTION IS AUTOMATIC
  RETENTION IS FIXED
  SET SELECTION IS BY APPLICATION

SET NAME IS supplies
  OWNER IS supplier
  MEMBER IS part
  INSERTION IS MANUAL
  RETENTION IS OPTIONAL
  SET SELECTION IS BY APPLICATION
|}

let fresh () =
  let schema = Network.Ddl_parser.schema parts_ddl in
  let kernel = Mapping.Kernel.single () in
  Codasyl_dml.Session.create kernel (Mapping.Ab_schema.Net schema)

let exec session src =
  Codasyl_dml.Engine.execute session (Codasyl_dml.Parser.stmt src)

let expect_ok session src =
  match exec session src with
  | Ok o -> o
  | Error msg -> Alcotest.failf "%s: %s" src msg

let expect_error session src =
  match exec session src with
  | Error msg -> msg
  | Ok o -> Alcotest.failf "%s: expected error, got %s" src (Codasyl_dml.Engine.outcome_to_string o)

let run_all session srcs = List.iter (fun src -> ignore (expect_ok session src)) srcs

let populated () =
  let session = fresh () in
  run_all session
    [
      "MOVE 'Acme' TO sname IN supplier"; "MOVE 'Monterey' TO city IN supplier";
      "STORE supplier";
      "MOVE 'bolt' TO pname IN part"; "MOVE 5 TO weight IN part"; "STORE part";
      "CONNECT part TO supplies";
      "MOVE 'nut' TO pname IN part"; "MOVE 2 TO weight IN part"; "STORE part";
      "CONNECT part TO supplies";
      "MOVE 'Zenith' TO sname IN supplier"; "MOVE 'Carmel' TO city IN supplier";
      "STORE supplier";
      "MOVE 'gear' TO pname IN part"; "MOVE 9 TO weight IN part"; "STORE part";
      "CONNECT part TO supplies";
    ];
  session

let test_store_and_navigate () =
  let session = populated () in
  run_all session
    [ "MOVE 'Acme' TO sname IN supplier"; "FIND ANY supplier USING sname IN supplier" ];
  let names = ref [] in
  ignore (expect_ok session "FIND FIRST part WITHIN supplies");
  let rec loop () =
    match expect_ok session "GET pname IN part" with
    | Codasyl_dml.Engine.Got values ->
      names := Abdm.Value.to_display (List.assoc "pname" values) :: !names;
      begin
        match exec session "FIND NEXT part WITHIN supplies" with
        | Ok (Codasyl_dml.Engine.Found _) -> loop ()
        | Ok Codasyl_dml.Engine.End_of_set -> ()
        | Ok o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
        | Error msg -> Alcotest.fail msg
      end
    | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
  in
  loop ();
  Alcotest.(check (list string)) "Acme's parts only" [ "bolt"; "nut" ]
    (List.rev !names)

let test_store_duplicates_not_allowed () =
  let session = populated () in
  run_all session
    [ "MOVE 'Acme' TO sname IN supplier"; "MOVE 'Elsewhere' TO city IN supplier" ];
  let msg = expect_error session "STORE supplier" in
  Alcotest.(check bool) "duplicate sname refused" true
    (Daplex.Str_search.find msg "DUPLICATES" <> None)

let test_find_owner_and_modify () =
  let session = populated () in
  run_all session
    [ "MOVE 'gear' TO pname IN part"; "FIND ANY part USING pname IN part" ];
  begin
    match expect_ok session "FIND OWNER WITHIN supplies" with
    | Codasyl_dml.Engine.Found { record_type = "supplier"; _ } -> ()
    | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
  end;
  begin
    match expect_ok session "GET sname IN supplier" with
    | Codasyl_dml.Engine.Got values ->
      Alcotest.(check string) "owner is Zenith" "Zenith"
        (Abdm.Value.to_display (List.assoc "sname" values))
    | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
  end;
  run_all session
    [ "MOVE 'Pacific Grove' TO city IN supplier"; "MODIFY city IN supplier" ];
  match expect_ok session "GET city IN supplier" with
  | Codasyl_dml.Engine.Got values ->
    Alcotest.(check string) "city modified" "Pacific Grove"
      (Abdm.Value.to_display (List.assoc "city" values))
  | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)

let test_disconnect_then_erase () =
  let session = populated () in
  (* Zenith owns gear: ERASE must refuse while the set occurrence is
     non-empty (the CODASYL constraint of §VI.H) *)
  run_all session
    [ "MOVE 'Zenith' TO sname IN supplier"; "FIND ANY supplier USING sname IN supplier" ];
  let msg = expect_error session "ERASE supplier" in
  Alcotest.(check bool) "owner of non-empty set" true
    (Daplex.Str_search.find msg "non-empty" <> None);
  (* detach the part, then the supplier becomes erasable *)
  run_all session
    [ "MOVE 'gear' TO pname IN part"; "FIND ANY part USING pname IN part";
      "DISCONNECT part FROM supplies";
      "MOVE 'Zenith' TO sname IN supplier";
      "FIND ANY supplier USING sname IN supplier"; "ERASE supplier" ];
  ignore (expect_ok session "MOVE 'Zenith' TO sname IN supplier");
  match exec session "FIND ANY supplier USING sname IN supplier" with
  | Ok Codasyl_dml.Engine.End_of_set -> ()
  | Ok o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)
  | Error msg -> Alcotest.fail msg

let test_net_store_needs_no_isa () =
  (* network records are not subtypes: STORE needs no prior currency *)
  let session = fresh () in
  run_all session
    [ "MOVE 'Solo' TO sname IN supplier"; "MOVE 'Nowhere' TO city IN supplier" ];
  match expect_ok session "STORE supplier" with
  | Codasyl_dml.Engine.Stored _ -> ()
  | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)

let test_net_reconnect () =
  let session = populated () in
  (* move bolt from Acme to Zenith *)
  run_all session
    [ "MOVE 'bolt' TO pname IN part"; "FIND ANY part USING pname IN part";
      "DISCONNECT part FROM supplies";
      "MOVE 'Zenith' TO sname IN supplier";
      "FIND ANY supplier USING sname IN supplier";
      "MOVE 'bolt' TO pname IN part"; "FIND ANY part USING pname IN part";
      "CONNECT part TO supplies" ];
  run_all session
    [ "MOVE 'Zenith' TO sname IN supplier";
      "FIND ANY supplier USING sname IN supplier" ];
  ignore (expect_ok session "FIND FIRST part WITHIN supplies");
  match expect_ok session "GET pname IN part" with
  | Codasyl_dml.Engine.Got values ->
    Alcotest.(check string) "bolt now under Zenith" "bolt"
      (Abdm.Value.to_display (List.assoc "pname" values))
  | o -> Alcotest.failf "unexpected %s" (Codasyl_dml.Engine.outcome_to_string o)

let suite =
  [
    "store and navigate", `Quick, test_store_and_navigate;
    "store duplicates refused", `Quick, test_store_duplicates_not_allowed;
    "find owner and modify", `Quick, test_find_owner_and_modify;
    "disconnect then erase", `Quick, test_disconnect_then_erase;
    "store without ISA currency", `Quick, test_net_store_needs_no_isa;
    "reconnect to another owner", `Quick, test_net_reconnect;
  ]
