(* Tests for the relational/SQL language interface. *)

let value = Alcotest.testable Abdm.Value.pp Abdm.Value.equal

let fresh () =
  let t = Relational.Engine.create (Mapping.Kernel.single ()) "payroll" in
  let setup =
    [
      "CREATE TABLE employee (name CHAR(25) UNIQUE, salary INT, dept CHAR(10))";
      "INSERT INTO employee VALUES ('Hsiao', 72000, 'cs')";
      "INSERT INTO employee VALUES ('Demurjian', 54000, 'cs')";
      "INSERT INTO employee VALUES ('Lum', 68000, 'math')";
      "INSERT INTO employee VALUES ('Marshall', 61000, 'math')";
    ]
  in
  List.iter
    (fun src ->
      match Relational.Engine.run t src with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" src msg)
    setup;
  t

let table t src =
  match Relational.Engine.run t src with
  | Ok (Relational.Engine.Table { header; rows }) -> header, rows
  | Ok o -> Alcotest.failf "%s: expected table, got %s" src (Relational.Engine.outcome_to_string o)
  | Error msg -> Alcotest.failf "%s: %s" src msg

let expect_error t src =
  match Relational.Engine.run t src with
  | Error msg -> msg
  | Ok o -> Alcotest.failf "%s: expected error, got %s" src (Relational.Engine.outcome_to_string o)

let test_parser_render () =
  let p src = Relational.Sql_ast.to_string (Relational.Sql_parser.stmt src) in
  Alcotest.(check string) "select"
    "SELECT name, salary FROM employee WHERE (salary > 100) AND (dept = 'cs')"
    (p "SELECT name, salary FROM employee WHERE salary > 100 AND dept = 'cs'");
  Alcotest.(check string) "group"
    "SELECT AVG(salary) FROM employee GROUP BY dept"
    (p "select avg(salary) from employee group by dept");
  Alcotest.(check string) "insert with columns"
    "INSERT INTO t (a, b) VALUES (1, 'x')"
    (p "INSERT INTO t (a, b) VALUES (1, 'x')");
  Alcotest.(check string) "update"
    "UPDATE t SET a = 2 WHERE (b = 'x')"
    (p "UPDATE t SET a = 2 WHERE b = 'x'")

let test_select_star () =
  let t = fresh () in
  let header, rows = table t "SELECT * FROM employee" in
  Alcotest.(check (list string)) "header" [ "name"; "salary"; "dept" ] header;
  Alcotest.(check int) "4 rows" 4 (List.length rows)

let test_select_where_and_or () =
  let t = fresh () in
  let _, rows =
    table t "SELECT name FROM employee WHERE dept = 'cs' OR salary > 65000"
  in
  Alcotest.(check int) "3 rows" 3 (List.length rows)

let test_select_order_by () =
  let t = fresh () in
  let _, rows = table t "SELECT name FROM employee ORDER BY salary" in
  let names = List.map (fun row -> Abdm.Value.to_display (List.hd row)) rows in
  Alcotest.(check (list string)) "ascending salary order"
    [ "Demurjian"; "Marshall"; "Lum"; "Hsiao" ] names

let test_select_group_by () =
  let t = fresh () in
  let header, rows = table t "SELECT AVG(salary), COUNT(name) FROM employee GROUP BY dept" in
  Alcotest.(check (list string)) "header includes group col"
    [ "dept"; "AVG(salary)"; "COUNT(name)" ] header;
  Alcotest.(check int) "two groups" 2 (List.length rows);
  match rows with
  | [ cs; math ] ->
    Alcotest.check value "cs avg" (Abdm.Value.Float 63000.) (List.nth cs 1);
    Alcotest.check value "math count" (Abdm.Value.Int 2) (List.nth math 2)
  | _ -> Alcotest.fail "expected cs and math groups"

let test_count_star () =
  let t = fresh () in
  let header, rows = table t "SELECT COUNT(*) FROM employee" in
  Alcotest.(check (list string)) "header" [ "COUNT(*)" ] header;
  Alcotest.check value "4" (Abdm.Value.Int 4) (List.hd (List.hd rows))

let test_update_delete () =
  let t = fresh () in
  begin
    match Relational.Engine.run t "UPDATE employee SET salary = 70000 WHERE dept = 'cs'" with
    | Ok (Relational.Engine.Updated 2) -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Relational.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  end;
  begin
    match Relational.Engine.run t "DELETE FROM employee WHERE salary < 65000" with
    | Ok (Relational.Engine.Deleted 1) -> ()
    | Ok o -> Alcotest.failf "unexpected %s" (Relational.Engine.outcome_to_string o)
    | Error msg -> Alcotest.fail msg
  end;
  let _, rows = table t "SELECT COUNT(*) FROM employee" in
  Alcotest.check value "3 remain" (Abdm.Value.Int 3) (List.hd (List.hd rows))

let test_unique_violation () =
  let t = fresh () in
  let msg = expect_error t "INSERT INTO employee VALUES ('Hsiao', 1, 'cs')" in
  Alcotest.(check bool) "unique caught" true
    (Daplex.Str_search.find msg "UNIQUE" <> None)

let test_type_checking () =
  let t = fresh () in
  let msg = expect_error t "INSERT INTO employee VALUES ('X', 'lots', 'cs')" in
  Alcotest.(check bool) "type mismatch" true
    (Daplex.Str_search.find msg "expects" <> None);
  let msg = expect_error t "UPDATE employee SET salary = 'big'" in
  Alcotest.(check bool) "update type mismatch" true
    (Daplex.Str_search.find msg "expects" <> None)

let test_schema_errors () =
  let t = fresh () in
  Alcotest.(check bool) "unknown relation" true
    (Result.is_error (Relational.Engine.run t "SELECT * FROM ghost"));
  Alcotest.(check bool) "unknown column" true
    (Result.is_error (Relational.Engine.run t "SELECT age FROM employee"));
  Alcotest.(check bool) "duplicate table" true
    (Result.is_error (Relational.Engine.run t "CREATE TABLE employee (x INT)"));
  Alcotest.(check bool) "arity mismatch" true
    (Result.is_error (Relational.Engine.run t "INSERT INTO employee VALUES (1)"));
  Alcotest.(check bool) "group by without aggregate" true
    (Result.is_error (Relational.Engine.run t "SELECT name FROM employee GROUP BY dept"))

let test_translation_log () =
  let t = fresh () in
  Relational.Engine.clear_log t;
  let _ = table t "SELECT name FROM employee WHERE salary > 60000" in
  match Relational.Engine.request_log t with
  | [ request ] ->
    Alcotest.(check string) "one RETRIEVE"
      "RETRIEVE ((FILE = 'employee') AND (salary > 60000)) (name)"
      (Abdl.Ast.to_string request)
  | log -> Alcotest.failf "expected 1 request, got %d" (List.length log)

let test_on_mbds () =
  let t = Relational.Engine.create (Mapping.Kernel.multi 4) "payroll" in
  List.iter
    (fun src -> ignore (Relational.Engine.run t src))
    [
      "CREATE TABLE pt (x INT, y INT)";
      "INSERT INTO pt VALUES (1, 10)";
      "INSERT INTO pt VALUES (2, 20)";
      "INSERT INTO pt VALUES (3, 30)";
    ];
  match Relational.Engine.run t "SELECT SUM(y) FROM pt WHERE x > 1" with
  | Ok (Relational.Engine.Table { rows = [ [ v ] ]; _ }) ->
    Alcotest.check value "sum 50" (Abdm.Value.Int 50) v
  | Ok o -> Alcotest.failf "unexpected %s" (Relational.Engine.outcome_to_string o)
  | Error msg -> Alcotest.fail msg

let suite =
  [
    "parser render", `Quick, test_parser_render;
    "select star", `Quick, test_select_star;
    "select where AND/OR", `Quick, test_select_where_and_or;
    "select order by", `Quick, test_select_order_by;
    "select group by", `Quick, test_select_group_by;
    "count star", `Quick, test_count_star;
    "update/delete", `Quick, test_update_delete;
    "unique violation", `Quick, test_unique_violation;
    "type checking", `Quick, test_type_checking;
    "schema errors", `Quick, test_schema_errors;
    "translation log", `Quick, test_translation_log;
    "on MBDS", `Quick, test_on_mbds;
  ]

(* --- joins ---------------------------------------------------------------- *)

let join_db () =
  let t = Relational.Engine.create (Mapping.Kernel.single ()) "campus" in
  List.iter
    (fun src ->
      match Relational.Engine.run t src with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" src msg)
    [
      "CREATE TABLE emp (name CHAR(25), salary INT, dept CHAR(10))";
      "CREATE TABLE dept (dname CHAR(10), building CHAR(20))";
      "INSERT INTO emp VALUES ('Hsiao', 72000, 'cs')";
      "INSERT INTO emp VALUES ('Lum', 68000, 'math')";
      "INSERT INTO emp VALUES ('Demurjian', 54000, 'cs')";
      "INSERT INTO dept VALUES ('cs', 'Spanagel')";
      "INSERT INTO dept VALUES ('math', 'Root')";
      "INSERT INTO dept VALUES ('physics', 'Bullard')";
    ];
  t

let test_join_basic () =
  let t = join_db () in
  let header, rows =
    table t "SELECT name, building FROM emp, dept WHERE dept = dname"
  in
  Alcotest.(check (list string)) "header" [ "name"; "building" ] header;
  Alcotest.(check int) "three rows" 3 (List.length rows)

let test_join_with_restriction () =
  let t = join_db () in
  let _, rows =
    table t
      "SELECT name, building FROM emp, dept WHERE dept = dname AND salary > 60000"
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let names = List.map (fun r -> Abdm.Value.to_display (List.hd r)) rows in
  Alcotest.(check bool) "Hsiao and Lum" true
    (List.mem "Hsiao" names && List.mem "Lum" names)

let test_join_qualified_columns () =
  let t = join_db () in
  let header, rows =
    table t "SELECT emp.name, dept.building FROM emp, dept WHERE emp.dept = dept.dname AND dept.dname = 'cs'"
  in
  Alcotest.(check (list string)) "qualified header" [ "emp.name"; "dept.building" ] header;
  Alcotest.(check int) "cs employees" 2 (List.length rows)

let test_join_star () =
  let t = join_db () in
  let header, _ =
    table t "SELECT * FROM emp, dept WHERE dept = dname"
  in
  Alcotest.(check (list string)) "star header"
    [ "emp.name"; "emp.salary"; "emp.dept"; "dept.dname"; "dept.building" ]
    header

let test_join_errors () =
  let t = join_db () in
  let bad src = Result.is_error (Relational.Engine.run t src) in
  Alcotest.(check bool) "no join condition" true
    (bad "SELECT name FROM emp, dept");
  Alcotest.(check bool) "aggregate in join" true
    (bad "SELECT COUNT(name) FROM emp, dept WHERE dept = dname");
  Alcotest.(check bool) "three tables" true
    (bad "SELECT name FROM emp, dept, emp WHERE dept = dname");
  Alcotest.(check bool) "or in join" true
    (bad "SELECT name FROM emp, dept WHERE dept = dname OR salary > 1")

let test_join_generates_retrieve_common () =
  let t = join_db () in
  Relational.Engine.clear_log t;
  let _ = table t "SELECT name FROM emp, dept WHERE dept = dname" in
  match Relational.Engine.request_log t with
  | [ Abdl.Ast.Retrieve_common _ ] -> ()
  | log -> Alcotest.failf "expected one RETRIEVE_COMMON, got %d requests" (List.length log)

let suite =
  suite
  @ [
      "join basic", `Quick, test_join_basic;
      "join with restriction", `Quick, test_join_with_restriction;
      "join qualified columns", `Quick, test_join_qualified_columns;
      "join star", `Quick, test_join_star;
      "join errors", `Quick, test_join_errors;
      "join generates RETRIEVE_COMMON", `Quick, test_join_generates_retrieve_common;
    ]
