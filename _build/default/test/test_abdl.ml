(* Tests for the ABDL kernel data language: lexer, parser, executor,
   aggregates. *)

let value = Alcotest.testable Abdm.Value.pp Abdm.Value.equal

(* --- lexer -------------------------------------------------------------- *)

let test_lexer () =
  let open Abdl.Lexer in
  Alcotest.(check bool) "basic tokens" true
    (tokens "(a = 'x')" = [ LPAREN; IDENT "a"; OP "="; STRING "x"; RPAREN; EOF ]);
  Alcotest.(check bool) "operators" true
    (tokens "<> <= >= < > =" =
       [ OP "<>"; OP "<="; OP ">="; OP "<"; OP ">"; OP "="; EOF ]);
  Alcotest.(check bool) "negative int" true (tokens "-5" = [ INT (-5); EOF ]);
  Alcotest.(check bool) "float" true (tokens "2.75" = [ FLOAT 2.75; EOF ]);
  Alcotest.(check bool) "quote escape" true
    (tokens "'it''s'" = [ STRING "it's"; EOF ]);
  Alcotest.(check bool) "unterminated raises" true
    (match tokens "'oops" with
     | exception Lex_error _ -> true
     | _ -> false)

(* --- parser ------------------------------------------------------------- *)

let parse = Abdl.Parser.request

let test_parse_retrieve () =
  match parse "RETRIEVE ((FILE = course) AND (title = 'DB')) (title, credits) BY course" with
  | Abdl.Ast.Retrieve { query; targets; by } ->
    Alcotest.(check int) "one conjunction" 1 (List.length query);
    Alcotest.(check int) "two predicates" 2 (List.length (List.hd query));
    Alcotest.(check bool) "targets" true
      (targets = [ Abdl.Ast.T_attr "title"; Abdl.Ast.T_attr "credits" ]);
    Alcotest.(check (option string)) "by" (Some "course") by
  | _ -> Alcotest.fail "expected Retrieve"

let test_parse_retrieve_all_and_agg () =
  begin
    match parse "RETRIEVE ((FILE = x)) (ALL)" with
    | Abdl.Ast.Retrieve { targets; _ } ->
      Alcotest.(check bool) "ALL" true (targets = [ Abdl.Ast.T_all ])
    | _ -> Alcotest.fail "expected Retrieve"
  end;
  match parse "RETRIEVE ((FILE = x)) (AVG(salary), COUNT(name))" with
  | Abdl.Ast.Retrieve { targets; _ } ->
    Alcotest.(check bool) "aggregates" true
      (targets =
         [ Abdl.Ast.T_agg (Abdl.Ast.Avg, "salary");
           Abdl.Ast.T_agg (Abdl.Ast.Count, "name") ])
  | _ -> Alcotest.fail "expected Retrieve"

let test_parse_or_normalisation () =
  match parse "RETRIEVE ((FILE = a) AND ((x = 1) OR (x = 2))) (ALL)" with
  | Abdl.Ast.Retrieve { query; _ } ->
    (* AND over OR distributes into two conjunctions *)
    Alcotest.(check int) "two conjunctions" 2 (List.length query);
    List.iter
      (fun conj -> Alcotest.(check int) "two predicates each" 2 (List.length conj))
      query
  | _ -> Alcotest.fail "expected Retrieve"

let test_parse_insert () =
  match parse "INSERT (<FILE, course>, <title, 'DB'>, <credits, 3>)" with
  | Abdl.Ast.Insert record ->
    Alcotest.(check (option string)) "file" (Some "course") (Abdm.Record.file record);
    Alcotest.check (Alcotest.option value) "credits" (Some (Abdm.Value.Int 3))
      (Abdm.Record.value_of record "credits")
  | _ -> Alcotest.fail "expected Insert"

let test_parse_update () =
  begin
    match parse "UPDATE ((FILE = emp)) (salary = salary + 100)" with
    | Abdl.Ast.Update (_, [ Abdm.Modifier.Set_arith ("salary", Abdm.Modifier.Add, Abdm.Value.Int 100) ]) -> ()
    | _ -> Alcotest.fail "expected arithmetic Update"
  end;
  begin
    match parse "UPDATE ((FILE = emp)) (rank = NULL)" with
    | Abdl.Ast.Update (_, [ Abdm.Modifier.Set_const ("rank", Abdm.Value.Null) ]) -> ()
    | _ -> Alcotest.fail "expected null Update"
  end;
  match parse "UPDATE ((FILE = emp)) (dept = accounting)" with
  | Abdl.Ast.Update (_, [ Abdm.Modifier.Set_const ("dept", Abdm.Value.Str "accounting") ]) -> ()
  | _ -> Alcotest.fail "expected bare-identifier string Update"

let test_parse_delete_and_errors () =
  begin
    match parse "DELETE ((FILE = course) AND (credits < 3))" with
    | Abdl.Ast.Delete query -> Alcotest.(check int) "one conj" 1 (List.length query)
    | _ -> Alcotest.fail "expected Delete"
  end;
  let bad src =
    match parse src with
    | exception Abdl.Parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown verb" true (bad "FROB ((x = 1))");
  Alcotest.(check bool) "trailing garbage" true (bad "DELETE ((x = 1)) zzz");
  Alcotest.(check bool) "bad operator" true (bad "DELETE ((x ~ 1))")

let test_parse_transaction () =
  let t =
    Abdl.Parser.transaction
      "INSERT (<FILE, f>, <x, 1>); INSERT (<FILE, f>, <x, 2>); DELETE ((FILE = f));"
  in
  Alcotest.(check int) "three requests" 3 (List.length t)

let test_roundtrip_to_string () =
  (* to_string output must reparse to the same AST *)
  let sources =
    [
      "RETRIEVE ((FILE = course) AND (title = 'DB')) (title, credits) BY course";
      "RETRIEVE ((FILE = x) OR (y > 2.5)) (ALL)";
      "INSERT (<FILE, f>, <x, 1>, <s, 'a b'>)";
      "UPDATE ((FILE = f) AND (x <> 3)) (x = x * 2)";
      "DELETE ((FILE = f) AND (s >= 'm'))";
      "RETRIEVE_COMMON ((FILE = emp)) (dept) AND ((FILE = dept)) (dname) (name, building)";
      "INSERT (<FILE, f>, <s, 'it''s quoted'>)";
    ]
  in
  List.iter
    (fun src ->
      let r1 = parse src in
      let r2 = parse (Abdl.Ast.to_string r1) in
      Alcotest.(check string) src (Abdl.Ast.to_string r1) (Abdl.Ast.to_string r2))
    sources

(* --- executor ------------------------------------------------------------ *)

let loaded_store () =
  let s = Abdm.Store.create () in
  let run src = ignore (Abdl.Exec.run s (Abdl.Parser.request src)) in
  run "INSERT (<FILE, emp>, <name, 'a'>, <salary, 10>, <dept, 'cs'>)";
  run "INSERT (<FILE, emp>, <name, 'b'>, <salary, 20>, <dept, 'cs'>)";
  run "INSERT (<FILE, emp>, <name, 'c'>, <salary, 30>, <dept, 'math'>)";
  run "INSERT (<FILE, emp>, <name, 'd'>, <salary, 40>, <dept, 'math'>)";
  s

let rows_of result =
  match result with
  | Abdl.Exec.Rows rows -> rows
  | _ -> Alcotest.fail "expected rows"

let test_exec_retrieve_projection () =
  let s = loaded_store () in
  let rows =
    rows_of (Abdl.Exec.run s (Abdl.Parser.request
      "RETRIEVE ((FILE = emp) AND (salary > 15)) (name)"))
  in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  let names =
    List.map
      (fun (r : Abdl.Exec.row) -> List.assoc "name" r.values)
      rows
  in
  Alcotest.(check bool) "names" true
    (names = [ Abdm.Value.Str "b"; Abdm.Value.Str "c"; Abdm.Value.Str "d" ])

let test_exec_retrieve_missing_attr_null () =
  let s = loaded_store () in
  let rows =
    rows_of (Abdl.Exec.run s (Abdl.Parser.request
      "RETRIEVE ((FILE = emp) AND (name = 'a')) (bonus)"))
  in
  Alcotest.check value "missing attr is null" Abdm.Value.Null
    (List.assoc "bonus" (List.hd rows).Abdl.Exec.values)

let test_exec_by_sorts () =
  let s = loaded_store () in
  let rows =
    rows_of (Abdl.Exec.run s (Abdl.Parser.request
      "RETRIEVE ((FILE = emp)) (salary) BY dept"))
  in
  let depts_in_dbkey_order = [ 10; 20; 30; 40 ] in
  ignore depts_in_dbkey_order;
  (* cs rows (salary 10, 20) must precede math rows (30, 40) *)
  let salaries =
    List.map (fun (r : Abdl.Exec.row) -> List.assoc "salary" r.values) rows
  in
  Alcotest.(check bool) "grouped by dept" true
    (salaries = List.map (fun i -> Abdm.Value.Int i) [ 10; 20; 30; 40 ])

let test_exec_aggregates () =
  let s = loaded_store () in
  let one_row src = List.hd (rows_of (Abdl.Exec.run s (Abdl.Parser.request src))) in
  let check_agg src attr expected =
    Alcotest.check value src expected (List.assoc attr (one_row src).Abdl.Exec.values)
  in
  check_agg "RETRIEVE ((FILE = emp)) (COUNT(name))" "COUNT(name)" (Abdm.Value.Int 4);
  check_agg "RETRIEVE ((FILE = emp)) (SUM(salary))" "SUM(salary)" (Abdm.Value.Int 100);
  check_agg "RETRIEVE ((FILE = emp)) (AVG(salary))" "AVG(salary)" (Abdm.Value.Float 25.);
  check_agg "RETRIEVE ((FILE = emp)) (MIN(salary))" "MIN(salary)" (Abdm.Value.Int 10);
  check_agg "RETRIEVE ((FILE = emp)) (MAX(name))" "MAX(name)" (Abdm.Value.Str "d")

let test_exec_group_by () =
  let s = loaded_store () in
  let rows =
    rows_of (Abdl.Exec.run s (Abdl.Parser.request
      "RETRIEVE ((FILE = emp)) (SUM(salary)) BY dept"))
  in
  Alcotest.(check int) "two groups" 2 (List.length rows);
  let by_dept =
    List.map
      (fun (r : Abdl.Exec.row) ->
        ( Abdm.Value.to_display (List.assoc "dept" r.values),
          List.assoc "SUM(salary)" r.values ))
      rows
  in
  Alcotest.(check bool) "sums per dept" true
    (by_dept = [ "cs", Abdm.Value.Int 30; "math", Abdm.Value.Int 70 ])

let test_exec_aggregate_empty () =
  let s = loaded_store () in
  let one_row src = List.hd (rows_of (Abdl.Exec.run s (Abdl.Parser.request src))) in
  let row = one_row "RETRIEVE ((FILE = emp) AND (salary > 1000)) (COUNT(name), AVG(salary))" in
  Alcotest.check value "count 0" (Abdm.Value.Int 0)
    (List.assoc "COUNT(name)" row.Abdl.Exec.values);
  Alcotest.check value "avg null" Abdm.Value.Null
    (List.assoc "AVG(salary)" row.Abdl.Exec.values)

let test_exec_update_delete () =
  let s = loaded_store () in
  let run src = Abdl.Exec.run s (Abdl.Parser.request src) in
  begin
    match run "UPDATE ((FILE = emp) AND (dept = 'cs')) (salary = salary + 5)" with
    | Abdl.Exec.Updated 2 -> ()
    | r -> Alcotest.failf "expected Updated 2, got %s" (Abdl.Exec.result_to_string r)
  end;
  begin
    match run "DELETE ((FILE = emp) AND (salary = 15))" with
    | Abdl.Exec.Deleted 1 -> ()
    | r -> Alcotest.failf "expected Deleted 1, got %s" (Abdl.Exec.result_to_string r)
  end;
  Alcotest.(check int) "three left" 3 (Abdm.Store.size s)

(* --- aggregate state properties ------------------------------------------ *)

let gen_values =
  QCheck2.Gen.(list_size (int_range 0 30) (int_range (-100) 100))

let prop_aggregate_merge =
  QCheck2.Test.make ~name:"Aggregate.merge = sequential adds" ~count:300
    QCheck2.Gen.(pair gen_values gen_values)
    (fun (xs, ys) ->
      let fold vs =
        List.fold_left
          (fun st v -> Abdl.Aggregate.add st (Abdm.Value.Int v))
          Abdl.Aggregate.empty vs
      in
      let merged = Abdl.Aggregate.merge (fold xs) (fold ys) in
      let whole = fold (xs @ ys) in
      List.for_all
        (fun agg ->
          Abdm.Value.equal
            (Abdl.Aggregate.finalize agg merged)
            (Abdl.Aggregate.finalize agg whole))
        [ Abdl.Ast.Count; Abdl.Ast.Sum; Abdl.Ast.Avg; Abdl.Ast.Min; Abdl.Ast.Max ])

let prop_parser_roundtrip =
  (* generate random requests, print, reparse, compare rendering *)
  let gen_pred =
    QCheck2.Gen.(
      map2
        (fun attr v ->
          Abdm.Predicate.make (Printf.sprintf "a%d" attr) Abdm.Predicate.Eq
            (Abdm.Value.Int v))
        (int_range 0 5) (int_range (-5) 5))
  in
  let gen_query =
    QCheck2.Gen.(
      map
        (fun conjs -> List.map (fun preds -> Abdm.Predicate.file_eq "f" :: preds) conjs)
        (list_size (int_range 1 3) (list_size (int_range 0 3) gen_pred)))
  in
  QCheck2.Test.make ~name:"parser round-trips printed requests" ~count:200
    gen_query
    (fun query ->
      let request = Abdl.Ast.retrieve query [ Abdl.Ast.T_all ] in
      let printed = Abdl.Ast.to_string request in
      let reparsed = Abdl.Parser.request printed in
      String.equal printed (Abdl.Ast.to_string reparsed))

let suite =
  [
    "lexer", `Quick, test_lexer;
    "parse retrieve", `Quick, test_parse_retrieve;
    "parse ALL and aggregates", `Quick, test_parse_retrieve_all_and_agg;
    "parse OR normalisation", `Quick, test_parse_or_normalisation;
    "parse insert", `Quick, test_parse_insert;
    "parse update", `Quick, test_parse_update;
    "parse delete and errors", `Quick, test_parse_delete_and_errors;
    "parse transaction", `Quick, test_parse_transaction;
    "round-trip rendering", `Quick, test_roundtrip_to_string;
    "exec retrieve projection", `Quick, test_exec_retrieve_projection;
    "exec missing attr null", `Quick, test_exec_retrieve_missing_attr_null;
    "exec BY sorts", `Quick, test_exec_by_sorts;
    "exec aggregates", `Quick, test_exec_aggregates;
    "exec group by", `Quick, test_exec_group_by;
    "exec aggregate empty", `Quick, test_exec_aggregate_empty;
    "exec update/delete", `Quick, test_exec_update_delete;
    QCheck_alcotest.to_alcotest prop_aggregate_merge;
    QCheck_alcotest.to_alcotest prop_parser_roundtrip;
  ]

(* --- RETRIEVE_COMMON ------------------------------------------------------ *)

let join_store () =
  let s = Abdm.Store.create () in
  let run src = ignore (Abdl.Exec.run s (Abdl.Parser.request src)) in
  run "INSERT (<FILE, emp>, <name, 'a'>, <dept, 'cs'>)";
  run "INSERT (<FILE, emp>, <name, 'b'>, <dept, 'cs'>)";
  run "INSERT (<FILE, emp>, <name, 'c'>, <dept, 'math'>)";
  run "INSERT (<FILE, dept>, <dname, 'cs'>, <building, 'Spanagel'>)";
  run "INSERT (<FILE, dept>, <dname, 'math'>, <building, 'Root'>)";
  run "INSERT (<FILE, dept>, <dname, 'physics'>, <building, 'Bullard'>)";
  s

let test_retrieve_common_parse () =
  match
    Abdl.Parser.request
      "RETRIEVE_COMMON ((FILE = emp)) (dept) AND ((FILE = dept)) (dname) (name, building)"
  with
  | Abdl.Ast.Retrieve_common rc ->
    Alcotest.(check string) "left attr" "dept" rc.rc_left_attr;
    Alcotest.(check string) "right attr" "dname" rc.rc_right_attr;
    Alcotest.(check int) "targets" 2 (List.length rc.rc_targets)
  | _ -> Alcotest.fail "expected Retrieve_common"

let test_retrieve_common_join () =
  let s = join_store () in
  let rows =
    rows_of
      (Abdl.Exec.run s
         (Abdl.Parser.request
            "RETRIEVE_COMMON ((FILE = emp)) (dept) AND ((FILE = dept)) (dname) (name, building)"))
  in
  Alcotest.(check int) "three joined rows" 3 (List.length rows);
  let pairs =
    List.map
      (fun (r : Abdl.Exec.row) ->
        ( Abdm.Value.to_display (List.assoc "name" r.values),
          Abdm.Value.to_display (List.assoc "building" r.values) ))
      rows
  in
  Alcotest.(check bool) "a in Spanagel" true (List.mem ("a", "Spanagel") pairs);
  Alcotest.(check bool) "c in Root" true (List.mem ("c", "Root") pairs);
  (* physics has no employees: no row *)
  Alcotest.(check bool) "no Bullard" true
    (not (List.exists (fun (_, b) -> String.equal b "Bullard") pairs))

let test_retrieve_common_collision_rename () =
  let s = Abdm.Store.create () in
  let run src = ignore (Abdl.Exec.run s (Abdl.Parser.request src)) in
  run "INSERT (<FILE, a>, <name, 'x'>, <ref, 1>)";
  run "INSERT (<FILE, b>, <name, 'y'>, <id, 1>)";
  let rows =
    rows_of
      (Abdl.Exec.run s
         (Abdl.Parser.request
            "RETRIEVE_COMMON ((FILE = a)) (ref) AND ((FILE = b)) (id) (ALL)"))
  in
  let row = List.hd rows in
  Alcotest.(check bool) "left name kept" true
    (List.assoc_opt "name" row.Abdl.Exec.values = Some (Abdm.Value.Str "x"));
  Alcotest.(check bool) "right name renamed b.name" true
    (List.assoc_opt "b.name" row.Abdl.Exec.values = Some (Abdm.Value.Str "y"))

let test_retrieve_common_nulls_never_join () =
  let s = Abdm.Store.create () in
  let run src = ignore (Abdl.Exec.run s (Abdl.Parser.request src)) in
  run "INSERT (<FILE, a>, <ref, NULL>)";
  run "INSERT (<FILE, b>, <id, NULL>)";
  let rows =
    rows_of
      (Abdl.Exec.run s
         (Abdl.Parser.request
            "RETRIEVE_COMMON ((FILE = a)) (ref) AND ((FILE = b)) (id) (ALL)"))
  in
  Alcotest.(check int) "null keys never match" 0 (List.length rows)

let test_retrieve_common_on_mbds () =
  let c = Mbds.Controller.create 3 in
  let run src = ignore (Mbds.Controller.run c (Abdl.Parser.request src)) in
  run "INSERT (<FILE, emp>, <name, 'a'>, <dept, 'cs'>)";
  run "INSERT (<FILE, dept>, <dname, 'cs'>, <building, 'Spanagel'>)";
  match
    Mbds.Controller.run c
      (Abdl.Parser.request
         "RETRIEVE_COMMON ((FILE = emp)) (dept) AND ((FILE = dept)) (dname) (name, building)")
  with
  | Abdl.Exec.Rows [ row ] ->
    Alcotest.(check bool) "joined across backends" true
      (List.assoc_opt "building" row.Abdl.Exec.values
       = Some (Abdm.Value.Str "Spanagel"))
  | r -> Alcotest.failf "unexpected %s" (Abdl.Exec.result_to_string r)

let suite =
  suite
  @ [
      "retrieve_common parse", `Quick, test_retrieve_common_parse;
      "retrieve_common join", `Quick, test_retrieve_common_join;
      "retrieve_common collision rename", `Quick, test_retrieve_common_collision_rename;
      "retrieve_common null keys", `Quick, test_retrieve_common_nulls_never_join;
      "retrieve_common on MBDS", `Quick, test_retrieve_common_on_mbds;
    ]
